#include "util/entropy.hh"

#include <cassert>
#include <cmath>

namespace drange::util {

double
binaryShannonEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

double
shannonEntropy(const BitStream &bits)
{
    return binaryShannonEntropy(bits.onesFraction());
}

std::vector<std::size_t>
symbolCounts(const BitStream &bits, int m)
{
    assert(m >= 1 && m <= 16);
    std::vector<std::size_t> counts(std::size_t{1} << m, 0);
    if (bits.size() < static_cast<std::size_t>(m))
        return counts;

    const std::uint64_t mask = (std::uint64_t{1} << m) - 1;
    std::uint64_t window = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
        window = ((window << 1) | static_cast<std::uint64_t>(bits.at(i))) &
                 mask;
        if (i + 1 >= static_cast<std::size_t>(m))
            ++counts[window];
    }
    return counts;
}

double
symbolEntropy(const BitStream &bits, int m)
{
    const auto counts = symbolCounts(bits, m);
    std::size_t total = 0;
    for (std::size_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;

    double h = 0.0;
    for (std::size_t c : counts) {
        if (c == 0)
            continue;
        const double p = static_cast<double>(c) / total;
        h -= p * std::log2(p);
    }
    return h / m;
}

bool
passesSymbolFilter(const BitStream &bits, double tolerance, int m)
{
    if (bits.size() < static_cast<std::size_t>(m))
        return false;
    const auto counts = symbolCounts(bits, m);
    const double total = static_cast<double>(bits.size() - m + 1);
    const double expected = total / static_cast<double>(counts.size());
    const double lo = expected * (1.0 - tolerance);
    const double hi = expected * (1.0 + tolerance);
    for (std::size_t c : counts) {
        const double cd = static_cast<double>(c);
        if (cd < lo || cd > hi)
            return false;
    }
    return true;
}

double
minEntropy(const BitStream &bits, int m)
{
    const auto counts = symbolCounts(bits, m);
    std::size_t total = 0, max_count = 0;
    for (std::size_t c : counts) {
        total += c;
        if (c > max_count)
            max_count = c;
    }
    if (total == 0 || max_count == 0)
        return 0.0;
    const double pmax = static_cast<double>(max_count) / total;
    return -std::log2(pmax) / m;
}

} // namespace drange::util
