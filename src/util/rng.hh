/**
 * @file
 * Deterministic hashing and pseudo-random number generation utilities.
 *
 * Two distinct uses exist in this codebase and they must not be conflated:
 *
 *  1. *Deterministic* derivation of per-cell process-variation parameters
 *     from a device seed and cell coordinates (splitmix64 / hashMix).
 *     These model manufacturing-time variation, which is fixed for the
 *     lifetime of a device (paper Section 5.4).
 *
 *  2. *Non-deterministic* per-read noise sampling (Xoshiro256ss seeded
 *     from std::random_device by default), which models the thermal noise
 *     that makes activation failures truly random.
 */

#ifndef DRANGE_UTIL_RNG_HH
#define DRANGE_UTIL_RNG_HH

#include <cstdint>
#include <initializer_list>

namespace drange::util {

/**
 * Advance a splitmix64 state and return the next 64-bit output.
 *
 * @param state The generator state; updated in place.
 * @return The next pseudo-random 64-bit value.
 */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Finalizing 64-bit mixer (the splitmix64 output function). Stateless.
 */
std::uint64_t mix64(std::uint64_t x);

/**
 * Mix an arbitrary list of 64-bit values into a single well-distributed
 * 64-bit hash. Used to derive per-cell parameters from
 * (seed, bank, row, column, purpose-tag) tuples.
 */
std::uint64_t hashMix(std::initializer_list<std::uint64_t> values);

/**
 * Map a 64-bit hash to a double uniformly distributed in [0, 1).
 */
double u64ToUnitDouble(std::uint64_t x);

/**
 * Map a 64-bit hash to a standard-normal deviate. Deterministic: the same
 * input always yields the same deviate (inverse-CDF method on the unit
 * double). Used for frozen manufacturing variation.
 */
double u64ToGaussian(std::uint64_t x);

/**
 * xoshiro256** pseudo-random generator. Fast, high-quality, 256-bit state.
 *
 * Used both as the simulated physical-noise stream (seeded from
 * std::random_device) and as a reference PRNG in tests and benchmarks.
 */
class Xoshiro256ss
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Xoshiro256ss(std::uint64_t seed);

    /** Construct with a non-deterministic seed from std::random_device. */
    Xoshiro256ss();

    /** @return the next 64-bit pseudo-random value. */
    std::uint64_t next();

    /** @return a double uniformly distributed in [0, 1). */
    double nextDouble();

    /** @return a standard-normal deviate (Box-Muller, cached pair). */
    double nextGaussian();

    /** @return a uniformly distributed value in [0, bound). */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** @return true with probability p (clamped to [0, 1]). */
    bool nextBernoulli(double p);

  private:
    std::uint64_t s_[4];
    double cached_gaussian_ = 0.0;
    bool has_cached_gaussian_ = false;
};

/**
 * Inverse of the standard normal CDF (Acklam's rational approximation,
 * refined with one Halley step). Accurate to ~1e-9 over (0, 1).
 *
 * @param p Probability in (0, 1).
 * @return z such that Phi(z) = p.
 */
double inverseNormalCdf(double p);

} // namespace drange::util

#endif // DRANGE_UTIL_RNG_HH
