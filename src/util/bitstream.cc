#include "util/bitstream.hh"

#include <bit>
#include <cassert>
#include <functional>
#include <stdexcept>

namespace drange::util {

BitStream
BitStream::fromString(const std::string &bits)
{
    BitStream bs;
    for (char c : bits) {
        if (c == '0') {
            bs.append(false);
        } else if (c == '1') {
            bs.append(true);
        } else if (c == ' ' || c == '\n' || c == '\t') {
            continue;
        } else {
            throw std::invalid_argument(
                "BitStream::fromString: invalid character");
        }
    }
    return bs;
}

BitStream
BitStream::fromWords(const std::vector<std::uint64_t> &words,
                     int bits_per_word)
{
    BitStream bs;
    for (std::uint64_t w : words)
        bs.appendBits(w, bits_per_word);
    return bs;
}

void
BitStream::append(bool bit)
{
    const std::size_t word = size_ / 64;
    const std::size_t off = size_ % 64;
    if (word >= words_.size())
        words_.push_back(0);
    if (bit)
        words_[word] |= (std::uint64_t{1} << off);
    ++size_;
}

void
BitStream::appendBits(std::uint64_t value, int count)
{
    assert(count >= 0 && count <= 64);
    if (count <= 0)
        return; // Nothing to append; avoids an empty appendWords call.
    // Mask only below 64: a 64-bit shift by `count == 64` is undefined,
    // and no masking is needed for a full word.
    if (count < 64)
        value &= (std::uint64_t{1} << count) - 1;
    appendWords(&value, static_cast<std::size_t>(count));
}

void
BitStream::append(const BitStream &other)
{
    appendWords(other.words_.data(), other.size_);
}

void
BitStream::appendWords(const std::uint64_t *words, std::size_t bit_count)
{
    if (bit_count == 0)
        return;
    const std::size_t src_words = (bit_count + 63) / 64;
    if (!words_.empty() &&
        std::greater<const std::uint64_t *>{}(words + src_words,
                                              words_.data()) &&
        std::less<const std::uint64_t *>{}(words,
                                           words_.data() + words_.size())) {
        // Source aliases our own storage (e.g. self-append): snapshot
        // first, growth below would otherwise invalidate the pointer.
        const std::vector<std::uint64_t> copy(words, words + src_words);
        appendWords(copy.data(), bit_count);
        return;
    }
    const std::size_t off = size_ % 64;
    const std::size_t new_size = size_ + bit_count;
    // +1: the unaligned path pushes a spill word past the final tail
    // before the trailing resize trims it.
    words_.reserve((new_size + 63) / 64 + 1);

    for (std::size_t i = 0; i < src_words; ++i) {
        std::uint64_t w = words[i];
        // Bits of the final source word beyond bit_count are not part
        // of the payload.
        if (i == src_words - 1 && bit_count % 64 != 0)
            w &= (std::uint64_t{1} << (bit_count % 64)) - 1;
        if (off == 0) {
            words_.push_back(w);
        } else {
            words_.back() |= w << off;
            words_.push_back(w >> (64 - off));
        }
    }

    size_ = new_size;
    // The unaligned path may spill one word past the new tail.
    words_.resize((size_ + 63) / 64);
}

void
BitStream::appendWords(const std::vector<std::uint64_t> &words,
                       std::size_t bit_count)
{
    assert(bit_count <= words.size() * 64);
    appendWords(words.data(), bit_count);
}

void
BitStream::truncate(std::size_t new_size)
{
    if (new_size > size_)
        throw std::out_of_range("BitStream::truncate: growing");
    size_ = new_size;
    words_.resize((size_ + 63) / 64);
    // Keep the invariant that bits >= size() in the last word are zero.
    if (size_ % 64 != 0)
        words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
}

void
BitStream::reserve(std::size_t bits)
{
    words_.reserve((bits + 63) / 64);
}

bool
BitStream::at(std::size_t index) const
{
    assert(index < size_);
    return (words_[index / 64] >> (index % 64)) & 1;
}

void
BitStream::clear()
{
    words_.clear();
    size_ = 0;
}

std::size_t
BitStream::popcount() const
{
    std::size_t count = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
        std::uint64_t w = words_[i];
        // Mask the tail of the last word.
        if (i == words_.size() - 1 && size_ % 64 != 0)
            w &= (std::uint64_t{1} << (size_ % 64)) - 1;
        count += std::popcount(w);
    }
    return count;
}

double
BitStream::onesFraction() const
{
    if (size_ == 0)
        return 0.0;
    return static_cast<double>(popcount()) / static_cast<double>(size_);
}

BitStream
BitStream::prefix(std::size_t count) const
{
    return slice(0, count);
}

BitStream
BitStream::slice(std::size_t begin, std::size_t count) const
{
    assert(begin + count <= size_);
    BitStream out;
    for (std::size_t i = 0; i < count; ++i)
        out.append(at(begin + i));
    return out;
}

std::vector<int>
BitStream::toPlusMinusOne() const
{
    std::vector<int> out(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out[i] = at(i) ? 1 : -1;
    return out;
}

std::string
BitStream::toString() const
{
    std::string out(size_, '0');
    for (std::size_t i = 0; i < size_; ++i)
        if (at(i))
            out[i] = '1';
    return out;
}

std::vector<std::uint8_t>
BitStream::toBytesMsbFirst() const
{
    std::vector<std::uint8_t> out((size_ + 7) / 8, 0);
    for (std::size_t i = 0; i < size_; ++i)
        if (at(i))
            out[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    return out;
}

std::uint64_t
BitStream::window(std::size_t index, int count) const
{
    assert(count >= 0 && count <= 64);
    assert(index + static_cast<std::size_t>(count) <= size_);
    std::uint64_t v = 0;
    for (int i = 0; i < count; ++i)
        v = (v << 1) | static_cast<std::uint64_t>(at(index + i));
    return v;
}

} // namespace drange::util
