/**
 * @file
 * Minimal SHA-256 implementation (FIPS 180-4).
 *
 * Used by the Sutar+ retention-failure TRNG baseline (paper Section 8.2),
 * which hashes a block of retention errors into a 256-bit random number.
 */

#ifndef DRANGE_UTIL_SHA256_HH
#define DRANGE_UTIL_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace drange::util {

/**
 * Incremental SHA-256 hasher.
 */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize and return the 32-byte digest. Hasher must be reset
     * before reuse. */
    std::array<std::uint8_t, 32> digest();

    /** Reset to the initial state. */
    void reset();

    /** One-shot convenience hash. */
    static std::array<std::uint8_t, 32>
    hash(const std::vector<std::uint8_t> &data);

    /** Lowercase hex rendering of a digest. */
    static std::string toHex(const std::array<std::uint8_t, 32> &digest);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t state_[8];
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
    std::uint64_t total_len_ = 0;
};

} // namespace drange::util

#endif // DRANGE_UTIL_SHA256_HH
