/**
 * @file
 * Plain-text table formatting for the benchmark harness output. Every
 * bench binary prints paper-style rows through this helper so the output
 * is uniform and diffable.
 */

#ifndef DRANGE_UTIL_TABLE_HH
#define DRANGE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace drange::util {

/**
 * A simple left/right aligned text table with a header row.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Add a row; must match the number of headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for callers). */
    static std::string num(double value, int precision = 3);

    /** Render the table, with a separator under the header. */
    std::string toString() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace drange::util

#endif // DRANGE_UTIL_TABLE_HH
