/**
 * @file
 * Entropy estimation helpers used by the RNG-cell identification step
 * (paper Section 6.1) and the evaluation (Section 7.1).
 */

#ifndef DRANGE_UTIL_ENTROPY_HH
#define DRANGE_UTIL_ENTROPY_HH

#include <array>
#include <cstddef>
#include <vector>

#include "util/bitstream.hh"

namespace drange::util {

/**
 * Shannon entropy (bits/bit) of a binary stream with 1-probability @p p:
 * H(p) = -p log2 p - (1-p) log2 (1-p). Returns 0 for degenerate p.
 */
double binaryShannonEntropy(double p);

/**
 * Shannon entropy of a bit stream, computed from its ones fraction
 * (the metric the paper uses in Section 7.1).
 */
double shannonEntropy(const BitStream &bits);

/**
 * Count occurrences of each m-bit symbol across a bit stream using a
 * sliding (overlapping) window, the counting scheme used for RNG-cell
 * identification.
 *
 * @param bits Input stream.
 * @param m Symbol width in bits (1..16).
 * @return 2^m counts; counts.sum() == bits.size() - m + 1.
 */
std::vector<std::size_t> symbolCounts(const BitStream &bits, int m);

/**
 * Shannon entropy (bits/symbol) of the empirical m-bit symbol
 * distribution, normalized by m to bits/bit.
 */
double symbolEntropy(const BitStream &bits, int m);

/**
 * The paper's RNG-cell acceptance filter (Section 6.1): a 1000-bit sample
 * of a cell is accepted if every 3-bit symbol occurs an approximately
 * equal number of times, within +/- tolerance (default 10%) of the
 * expected count.
 *
 * @param bits Sampled bit stream from one cell.
 * @param tolerance Relative tolerance around the expected symbol count.
 * @param m Symbol width (paper uses 3).
 * @retval true if the sample passes the filter.
 */
bool passesSymbolFilter(const BitStream &bits, double tolerance = 0.10,
                        int m = 3);

/**
 * Min-entropy (bits/bit) of the empirical m-bit symbol distribution:
 * -log2(max_i p_i) / m.
 */
double minEntropy(const BitStream &bits, int m);

} // namespace drange::util

#endif // DRANGE_UTIL_ENTROPY_HH
