/**
 * @file
 * Bounded thread-safe FIFO used to hand harvested bit chunks from
 * producer (harvesting) threads to consumer (conditioning/validation)
 * threads.
 *
 * The queue blocks producers while full (backpressure: harvesting may
 * not outrun conditioning by more than the queue depth) and blocks
 * consumers while empty. close() ends the stream: blocked producers
 * give up (push returns false), and consumers drain the remaining
 * items before pop() returns nullopt. Wait counters are kept so the
 * streaming bench can report which side of the pipeline was the
 * bottleneck.
 */

#ifndef DRANGE_UTIL_CHUNK_QUEUE_HH
#define DRANGE_UTIL_CHUNK_QUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace drange::util {

template <typename T>
class ChunkQueue
{
  public:
    explicit ChunkQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    ChunkQueue(const ChunkQueue &) = delete;
    ChunkQueue &operator=(const ChunkQueue &) = delete;

    /**
     * Enqueue @p item, blocking while the queue is full.
     * @return false if the queue was closed (item is dropped).
     */
    bool push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (items_.size() >= capacity_ && !closed_) {
            ++push_waits_;
            not_full_.wait(lock, [&] {
                return items_.size() < capacity_ || closed_;
            });
        }
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        ++pushes_;
        high_watermark_ = std::max(high_watermark_, items_.size());
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is empty.
     * @return nullopt once the queue is closed and fully drained.
     */
    std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (items_.empty() && !closed_) {
            ++pop_waits_;
            not_empty_.wait(lock,
                            [&] { return !items_.empty() || closed_; });
        }
        if (items_.empty())
            return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        ++pops_;
        not_full_.notify_one();
        return item;
    }

    /** Non-blocking pop. @return false if the queue is empty. */
    bool tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        ++pops_;
        not_full_.notify_one();
        return true;
    }

    /** End the stream: wake all waiters; push() fails from now on. */
    void close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

    /** Deepest the queue has ever been (items, not bits). Together
     * with pushWaits()/popWaits() this is the backpressure signal the
     * adaptive chunk sizing in trng::Service feeds on: a queue that
     * never fills is producer-bound, one pinned at capacity is
     * consumer-bound. */
    std::size_t highWatermark() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return high_watermark_;
    }

    /** Times push() blocked on a full queue (consumer-bound pipeline). */
    std::uint64_t pushWaits() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return push_waits_;
    }

    /** Times pop() blocked on an empty queue (producer-bound pipeline). */
    std::uint64_t popWaits() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return pop_waits_;
    }

    std::uint64_t pushes() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return pushes_;
    }

    std::uint64_t pops() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return pops_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    std::size_t high_watermark_ = 0;
    bool closed_ = false;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t push_waits_ = 0;
    std::uint64_t pop_waits_ = 0;
};

} // namespace drange::util

#endif // DRANGE_UTIL_CHUNK_QUEUE_HH
