/**
 * @file
 * A growable stream of bits with append / random access / export helpers.
 *
 * BitStream is the common currency between the TRNG engines (which append
 * harvested bits) and the NIST statistical test suite (which consumes
 * them). Bits are stored packed, 64 per word, in append order.
 */

#ifndef DRANGE_UTIL_BITSTREAM_HH
#define DRANGE_UTIL_BITSTREAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace drange::util {

/**
 * Packed, append-only sequence of bits.
 */
class BitStream
{
  public:
    BitStream() = default;

    /** Construct from a 0/1 character string (e.g. "100101"). */
    static BitStream fromString(const std::string &bits);

    /** Construct from the low @p bits_per_word bits of each value. */
    static BitStream fromWords(const std::vector<std::uint64_t> &words,
                               int bits_per_word);

    /** Append a single bit. */
    void append(bool bit);

    /** Append the low @p count bits of @p value, LSB first.
     * count must be in [0, 64]; both boundary values are valid
     * (count == 0 appends nothing, count == 64 the whole word). */
    void appendBits(std::uint64_t value, int count);

    /**
     * Append all bits of another stream.
     *
     * Word-level fast path: whole 64-bit words of @p other are shifted
     * into place instead of copying bit by bit. This is the merge hot
     * path when per-channel harvest streams are concatenated.
     */
    void append(const BitStream &other);

    /**
     * Append the first @p bit_count bits stored packed in @p words
     * (64 bits per word, append order, same layout as words()). Bits of
     * the final source word above @p bit_count are ignored.
     * Requires @p words to hold at least ceil(bit_count / 64) words.
     * A source aliasing this stream's own storage (including
     * words().data()) is detected and snapshotted, so self-append is
     * safe.
     */
    void appendWords(const std::uint64_t *words, std::size_t bit_count);

    /** Convenience overload over a packed word vector. */
    void appendWords(const std::vector<std::uint64_t> &words,
                     std::size_t bit_count);

    /**
     * Shrink the stream to its first @p new_size bits.
     * Requires new_size <= size().
     */
    void truncate(std::size_t new_size);

    /** Reserve storage for @p bits total bits. */
    void reserve(std::size_t bits);

    /** Packed backing words, 64 bits each in append order; bits at
     * positions >= size() in the last word are zero. */
    const std::vector<std::uint64_t> &words() const { return words_; }

    /** @return the bit at @p index (0-based, append order). */
    bool at(std::size_t index) const;

    /** @return number of bits in the stream. */
    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Remove all bits. */
    void clear();

    /** @return the number of 1 bits. */
    std::size_t popcount() const;

    /** @return fraction of 1 bits, or 0 for an empty stream. */
    double onesFraction() const;

    /**
     * @return the first @p count bits as a new stream.
     * Requires count <= size().
     */
    BitStream prefix(std::size_t count) const;

    /** @return bits [begin, begin + count) as a new stream. */
    BitStream slice(std::size_t begin, std::size_t count) const;

    /** @return bits as a vector of +1/-1 ints (NIST convention). */
    std::vector<int> toPlusMinusOne() const;

    /** @return bits as a 0/1 character string. */
    std::string toString() const;

    /** @return packed bytes, bit 0 of the stream in the MSB of byte 0. */
    std::vector<std::uint8_t> toBytesMsbFirst() const;

    /**
     * Read @p count bits starting at @p index as an integer, first bit in
     * the most significant position. Requires index + count <= size().
     */
    std::uint64_t window(std::size_t index, int count) const;

  private:
    std::vector<std::uint64_t> words_;
    std::size_t size_ = 0;
};

} // namespace drange::util

#endif // DRANGE_UTIL_BITSTREAM_HH
