#include "util/stats.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace drange::util {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    assert(xs.size() == ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

BoxWhisker
BoxWhisker::of(const std::vector<double> &xs)
{
    BoxWhisker bw;
    if (xs.empty())
        return bw;

    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());

    bw.count = sorted.size();
    bw.min = sorted.front();
    bw.max = sorted.back();
    bw.q1 = quantile(sorted, 0.25);
    bw.median = quantile(sorted, 0.50);
    bw.q3 = quantile(sorted, 0.75);

    const double iqr = bw.q3 - bw.q1;
    const double lo_fence = bw.q1 - 1.5 * iqr;
    const double hi_fence = bw.q3 + 1.5 * iqr;

    bw.whisker_lo = bw.max;
    bw.whisker_hi = bw.min;
    for (double x : sorted) {
        if (x >= lo_fence && x < bw.whisker_lo)
            bw.whisker_lo = x;
        if (x <= hi_fence && x > bw.whisker_hi)
            bw.whisker_hi = x;
        if (x < lo_fence || x > hi_fence)
            ++bw.outliers;
    }
    return bw;
}

std::string
BoxWhisker::toString() const
{
    std::ostringstream os;
    os.precision(4);
    os << "n=" << count << " min=" << min << " w-=" << whisker_lo
       << " q1=" << q1 << " med=" << median << " q3=" << q3
       << " w+=" << whisker_hi << " max=" << max << " outliers=" << outliers;
    return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    assert(bins > 0 && hi > lo);
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    double frac = (x - lo_) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    std::size_t bin = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    if (bin >= counts_.size())
        bin = counts_.size() - 1;
    ++counts_[bin];
    ++total_;
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHigh(std::size_t bin) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) /
                     static_cast<double>(counts_.size());
}

std::string
Histogram::toString(std::size_t bar_width) const
{
    std::size_t max_count = 1;
    for (std::size_t c : counts_)
        max_count = std::max(max_count, c);

    std::ostringstream os;
    os.precision(4);
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const std::size_t len = counts_[b] * bar_width / max_count;
        os << "[" << binLow(b) << ", " << binHigh(b) << ") "
           << std::string(len, '#') << " " << counts_[b] << "\n";
    }
    return os.str();
}

} // namespace drange::util
