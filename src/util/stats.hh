/**
 * @file
 * Descriptive statistics used throughout the characterization benches:
 * mean/stddev, quantiles, box-and-whisker summaries (the paper's preferred
 * presentation for Figures 6-8), and simple histograms.
 */

#ifndef DRANGE_UTIL_STATS_HH
#define DRANGE_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace drange::util {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Sample standard deviation (n-1 denominator); 0 if n < 2. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolation quantile of an unsorted sample.
 *
 * @param xs Sample (copied and sorted internally).
 * @param q Quantile in [0, 1].
 */
double quantile(std::vector<double> xs, double q);

/** Pearson correlation coefficient; 0 if either side is degenerate. */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/**
 * Box-and-whisker summary in the style the paper uses (Section 5.3,
 * footnote 3): quartiles, median, whiskers at 1.5 IQR, and outlier count.
 */
struct BoxWhisker
{
    double min = 0.0;
    double q1 = 0.0;
    double median = 0.0;
    double q3 = 0.0;
    double max = 0.0;
    double whisker_lo = 0.0; //!< Lowest point within q1 - 1.5 IQR.
    double whisker_hi = 0.0; //!< Highest point within q3 + 1.5 IQR.
    std::size_t outliers = 0;
    std::size_t count = 0;

    /** Compute the summary of a sample. */
    static BoxWhisker of(const std::vector<double> &xs);

    /** One-line human-readable rendering. */
    std::string toString() const;
};

/**
 * Fixed-bin histogram over [lo, hi); values outside are clamped to the
 * first/last bin.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t binCount(std::size_t bin) const { return counts_.at(bin); }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }
    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;

    /** Render as rows of "[lo, hi) count" with a proportional bar. */
    std::string toString(std::size_t bar_width = 40) const;

  private:
    double lo_, hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace drange::util

#endif // DRANGE_UTIL_STATS_HH
