#include "fleet/reprofiler.hh"

#include <algorithm>

namespace drange::fleet {

const char *
toString(ReprofileReason reason)
{
    switch (reason) {
    case ReprofileReason::HealthAlarm:
        return "health-alarm";
    case ReprofileReason::TemperatureShift:
        return "temperature-shift";
    case ReprofileReason::ProfileAge:
        return "profile-age";
    }
    return "unknown";
}

bool
Reprofiler::enqueue(std::uint32_t device_id, ReprofileReason reason)
{
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto &e : queue_) {
        if (e.device_id == device_id) {
            ++stats_.deduplicated;
            return false;
        }
    }
    queue_.push_back({device_id, reason});
    switch (reason) {
    case ReprofileReason::HealthAlarm:
        ++stats_.enqueued_health;
        break;
    case ReprofileReason::TemperatureShift:
        ++stats_.enqueued_temperature;
        break;
    case ReprofileReason::ProfileAge:
        ++stats_.enqueued_age;
        break;
    }
    return true;
}

std::optional<Reprofiler::Entry>
Reprofiler::pop()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty())
        return std::nullopt;
    Entry e = queue_.front();
    queue_.erase(queue_.begin());
    return e;
}

std::vector<Reprofiler::Entry>
Reprofiler::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    std::vector<Entry> out;
    out.swap(queue_);
    return out;
}

void
Reprofiler::markCompleted(std::uint32_t device_id)
{
    (void)device_id;
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.completed;
}

bool
Reprofiler::pending(std::uint32_t device_id) const
{
    std::unique_lock<std::mutex> lock(mu_);
    return std::any_of(queue_.begin(), queue_.end(),
                       [device_id](const Entry &e) {
                           return e.device_id == device_id;
                       });
}

std::size_t
Reprofiler::pendingCount() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return queue_.size();
}

ReprofilerStats
Reprofiler::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

} // namespace drange::fleet
