#include "fleet/population.hh"

#include <cmath>
#include <stdexcept>

#include "util/rng.hh"

namespace drange::fleet {

namespace {

void
badFleet(const std::string &what)
{
    throw std::invalid_argument("fleet: " + what);
}

std::int64_t
boundedInt(const trng::Params &params, const std::string &key,
           std::int64_t fallback, std::int64_t min)
{
    const std::int64_t value = params.getInt(key, fallback);
    if (value < min)
        badFleet("\"" + key + "\" must be >= " + std::to_string(min) +
                 " (got " + std::to_string(value) + ")");
    return value;
}

double
boundedDouble(const trng::Params &params, const std::string &key,
              double fallback, double min)
{
    const double value = params.getDouble(key, fallback);
    if (value < min)
        badFleet("\"" + key + "\" must be >= " + std::to_string(min) +
                 " (got " + std::to_string(value) + ")");
    return value;
}

} // anonymous namespace

FleetConfig
FleetConfig::fromParams(const trng::Params &params)
{
    FleetConfig cfg;
    cfg.devices =
        static_cast<int>(boundedInt(params, "devices", cfg.devices, 1));
    cfg.seed = static_cast<std::uint64_t>(
        boundedInt(params, "seed", static_cast<std::int64_t>(cfg.seed),
                   0));
    cfg.noise_seed = static_cast<std::uint64_t>(
        boundedInt(params, "noise_seed", 0, 0));

    // Vendor mix: mix.<name> relative weights over the built-in
    // vendor families. Omitted entirely -> even split.
    const trng::Params mix = params.section("mix");
    const std::vector<Vendor> builtin = Vendor::builtin();
    double weight_sum = 0.0;
    for (const std::string &key : mix.keys()) {
        bool known = false;
        for (const auto &v : builtin)
            known = known || v.name == key;
        if (!known) {
            std::string names;
            for (const auto &v : builtin)
                names += (names.empty() ? "" : ", ") + v.name;
            badFleet("unknown vendor \"mix." + key +
                     "\" (known vendors: " + names + ")");
        }
        const double w = mix.getDouble(key, 0.0);
        if (w < 0.0)
            badFleet("\"mix." + key + "\" must be >= 0");
        cfg.mix[key] = w;
        weight_sum += w;
    }
    if (!cfg.mix.empty() && weight_sum <= 0.0)
        badFleet("vendor mix weights sum to zero; at least one "
                 "mix.<vendor> must be positive");

    cfg.ambient_c = params.getDouble("ambient_c", cfg.ambient_c);
    cfg.temp_spread_c =
        boundedDouble(params, "temp_spread_c", cfg.temp_spread_c, 0.0);
    cfg.variability_sigma = boundedDouble(
        params, "variability_sigma", cfg.variability_sigma, 0.0);
    cfg.drift_c_per_hour = boundedDouble(
        params, "drift_c_per_hour", cfg.drift_c_per_hour, 0.0);

    cfg.banks =
        static_cast<int>(boundedInt(params, "banks", cfg.banks, 0));
    cfg.rows_per_bank = static_cast<int>(
        boundedInt(params, "rows_per_bank", cfg.rows_per_bank, 0));
    cfg.words_per_row = static_cast<int>(
        boundedInt(params, "words_per_row", cfg.words_per_row, 0));

    cfg.reduced_trcd_ns =
        params.getDouble("reduced_trcd_ns", cfg.reduced_trcd_ns);
    cfg.profile_rows = static_cast<int>(
        boundedInt(params, "profile_rows", cfg.profile_rows, 2));
    cfg.profile_words = static_cast<int>(
        boundedInt(params, "profile_words", cfg.profile_words, 1));
    cfg.screen_iterations = static_cast<int>(boundedInt(
        params, "screen_iterations", cfg.screen_iterations, 1));
    cfg.confirm_iterations = static_cast<int>(boundedInt(
        params, "confirm_iterations", cfg.confirm_iterations, 1));

    cfg.bloom_bits = static_cast<int>(
        boundedInt(params, "bloom_bits", cfg.bloom_bits, 64));
    cfg.bloom_hashes = static_cast<int>(
        boundedInt(params, "bloom_hashes", cfg.bloom_hashes, 1));
    cfg.store = params.getString("store", cfg.store);
    cfg.store_regenerate =
        params.getBool("store_regenerate", cfg.store_regenerate);

    cfg.reprofile_delta_c = boundedDouble(
        params, "reprofile_delta_c", cfg.reprofile_delta_c, 0.0);
    if (cfg.reprofile_delta_c == 0.0)
        badFleet("\"reprofile_delta_c\" must be > 0");
    cfg.max_profile_age_s = boundedDouble(
        params, "max_profile_age_s", cfg.max_profile_age_s, 0.0);

    // Per-device overrides: [fleet] device.<id>.vendor / .seed /
    // .temp_offset_c.
    for (const std::string &name : params.sections("device")) {
        const std::string id_str =
            name.substr(std::string("device.").size());
        int id = -1;
        try {
            std::size_t pos = 0;
            id = std::stoi(id_str, &pos);
            if (pos != id_str.size())
                id = -1;
        } catch (const std::exception &) {
            id = -1;
        }
        if (id < 0)
            badFleet("override section \"device." + id_str +
                     "\" is not a device index");
        if (id >= cfg.devices)
            badFleet("override \"device." + id_str +
                     "\" is outside the population (devices = " +
                     std::to_string(cfg.devices) + ")");

        const trng::Params dev = params.section(name);
        DeviceOverride ov;
        ov.id = id;
        ov.vendor = dev.getString("vendor", "");
        if (!ov.vendor.empty()) {
            bool known = false;
            for (const auto &v : builtin)
                known = known || v.name == ov.vendor;
            if (!known)
                badFleet("\"" + name + ".vendor\" names unknown "
                         "vendor \"" + ov.vendor + "\"");
        }
        ov.seed = static_cast<std::uint64_t>(
            boundedInt(dev, "seed", 0, 0));
        if (dev.has("temp_offset_c")) {
            ov.has_temp_offset = true;
            ov.temp_offset_c = dev.getDouble("temp_offset_c", 0.0);
        }
        dev.rejectUnknown("fleet override [" + name + "]");
        cfg.overrides.push_back(std::move(ov));
    }

    params.rejectUnknown("fleet config [fleet]");
    return cfg;
}

Population::Population(FleetConfig config) : config_(std::move(config))
{
    vendors_ = Vendor::builtin();
    if (!config_.mix.empty()) {
        for (auto &v : vendors_) {
            const auto it = config_.mix.find(v.name);
            v.weight = it != config_.mix.end() ? it->second : 0.0;
        }
    }
    double weight_sum = 0.0;
    for (const auto &v : vendors_)
        weight_sum += v.weight;
    if (weight_sum <= 0.0)
        throw std::invalid_argument(
            "fleet: vendor mix weights sum to zero");

    models_.reserve(config_.devices);
    for (int i = 0; i < config_.devices; ++i) {
        const std::uint64_t id_hash = util::mix64(
            config_.seed ^ (static_cast<std::uint64_t>(i) *
                            0x9e3779b97f4a7c15ull));

        // Deterministic weighted vendor draw.
        const double u =
            static_cast<double>(id_hash >> 11) / 9007199254740992.0;
        double acc = 0.0;
        const Vendor *vendor = &vendors_.back();
        for (const auto &v : vendors_) {
            acc += v.weight / weight_sum;
            if (u < acc) {
                vendor = &v;
                break;
            }
        }

        DeviceModel m;
        m.id = static_cast<std::uint32_t>(i);
        m.vendor = vendor->name;
        m.drift_c_per_hour = config_.drift_c_per_hour;

        std::uint64_t dev_seed = util::mix64(id_hash ^ 0x5eedull);
        if (dev_seed == 0)
            dev_seed = 1;

        // Per-DIMM variation from a per-device deterministic stream.
        util::Xoshiro256ss var(util::mix64(id_hash ^ 0x7a71ull));
        m.temp_offset_c = var.nextGaussian() * config_.temp_spread_c;
        m.variability =
            std::exp(var.nextGaussian() * config_.variability_sigma);

        // Apply overrides before layering the config.
        for (const auto &ov : config_.overrides) {
            if (ov.id != i)
                continue;
            if (!ov.vendor.empty())
                for (const auto &v : vendors_)
                    if (v.name == ov.vendor) {
                        vendor = &v;
                        m.vendor = v.name;
                    }
            if (ov.seed != 0)
                dev_seed = ov.seed;
            if (ov.has_temp_offset)
                m.temp_offset_c = ov.temp_offset_c;
        }

        m.config = dram::DeviceConfig::make(vendor->manufacturer,
                                            dev_seed);
        m.config.mapping = vendor->mapping;
        if (config_.banks > 0)
            m.config.geometry.banks = config_.banks;
        if (config_.rows_per_bank > 0)
            m.config.geometry.rows_per_bank = config_.rows_per_bank;
        if (config_.words_per_row > 0)
            m.config.geometry.words_per_row = config_.words_per_row;
        m.config.conditions.temperature_c =
            config_.ambient_c + m.temp_offset_c;
        m.config.profile.weak_col_fraction = std::min(
            0.2, m.config.profile.weak_col_fraction * m.variability);
        if (config_.noise_seed != 0) {
            m.config.noise_seed =
                util::mix64(config_.noise_seed ^ id_hash) | 1;
        }
        models_.push_back(std::move(m));
    }
}

std::unique_ptr<dram::DramDevice>
Population::build(std::size_t i) const
{
    return std::make_unique<dram::DramDevice>(models_.at(i).config);
}

int
Population::vendorCount(const std::string &name) const
{
    int count = 0;
    for (const auto &m : models_)
        count += m.vendor == name ? 1 : 0;
    return count;
}

std::uint64_t
Population::fingerprint() const
{
    std::uint64_t h =
        util::mix64(0xf1ee7ull ^ static_cast<std::uint64_t>(size()));
    for (const auto &m : models_)
        h = util::mix64(h ^ m.fingerprint());
    return h;
}

} // namespace drange::fleet
