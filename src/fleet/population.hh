/**
 * @file
 * The fleet population: N heterogeneous simulated DIMMs built from a
 * `[fleet]` Params section.
 *
 * The population itself is cheap -- it owns device *models* (a few
 * hundred bytes each), not simulated devices; DIMMs are instantiated
 * on demand by whoever serves them (the "fleet" entropy source builds
 * its active slice, the bench builds them one at a time). Everything
 * is deterministic in fleet.seed, so two processes configured with the
 * same [fleet] section agree on every device's identity -- which is
 * what lets a shared profile store work.
 */

#ifndef DRANGE_FLEET_POPULATION_HH
#define DRANGE_FLEET_POPULATION_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dram/device.hh"
#include "fleet/device_model.hh"
#include "trng/params.hh"

namespace drange::fleet {

/**
 * Parsed `[fleet]` section. See tools/trngd.example.conf for the
 * commented key reference.
 */
struct FleetConfig
{
    int devices = 64;         //!< Population size.
    std::uint64_t seed = 1;   //!< Master seed (device identities).
    std::uint64_t noise_seed = 0; //!< 0: nondeterministic per device.

    /** Vendor mix weights by vendor name (relative, need not sum to
     * 1). Defaults to an even split over the built-in vendors. */
    std::map<std::string, double> mix;

    double ambient_c = 45.0;     //!< Fleet ambient temperature.
    double temp_spread_c = 3.0;  //!< Sigma of per-slot thermal offset.
    double variability_sigma = 0.25; //!< Lognormal weak-density sigma.
    double drift_c_per_hour = 0.05;  //!< Predicted drift (age trigger).

    // Geometry overrides (0 keeps the dram::Geometry default).
    int banks = 0;
    int rows_per_bank = 0;
    int words_per_row = 0;

    // Profiling operating point and region, per device.
    double reduced_trcd_ns = 10.0;
    int profile_rows = 16;
    int profile_words = 8;
    int screen_iterations = 32; //!< Cold-profile reads per word.
    int confirm_iterations = 12; //!< Store-hit confirmation reads.

    // Profile-store knobs.
    int bloom_bits = 2048; //!< Filter size per device (256 bytes).
    int bloom_hashes = 4;
    std::string store;     //!< Store file path ("" = in-memory only).
    bool store_regenerate = false; //!< Rebuild on header mismatch.

    // Re-profiling triggers.
    double reprofile_delta_c = 5.0; //!< Temp shift past this re-profiles.
    double max_profile_age_s = 0.0; //!< 0: no age trigger.

    /** Per-device overrides: device.<id>.vendor / .seed /
     * .temp_offset_c, validated against the population. */
    struct DeviceOverride
    {
        int id = 0;
        std::string vendor; //!< Empty: keep the mixed-in vendor.
        std::uint64_t seed = 0;   //!< 0: keep the derived seed.
        bool has_temp_offset = false;
        double temp_offset_c = 0.0;
    };
    std::vector<DeviceOverride> overrides;

    /**
     * Parse an already-extracted [fleet] sub-bag. Unknown keys, a
     * vendor mix summing to zero, unknown vendor names, and overrides
     * for devices outside the population all throw
     * std::invalid_argument naming the offending key.
     */
    static FleetConfig fromParams(const trng::Params &params);
};

/**
 * Builds and owns the N device models of a fleet.
 */
class Population
{
  public:
    explicit Population(FleetConfig config);

    std::size_t size() const { return models_.size(); }
    const DeviceModel &model(std::size_t i) const
    {
        return models_.at(i);
    }
    const FleetConfig &config() const { return config_; }
    const std::vector<Vendor> &vendors() const { return vendors_; }

    /** Instantiate the simulated DIMM of device @p i. */
    std::unique_ptr<dram::DramDevice> build(std::size_t i) const;

    /** Devices of vendor @p name in the population. */
    int vendorCount(const std::string &name) const;

    /**
     * Configuration fingerprint over every device identity: the store
     * header embeds it so a store written for a different population
     * (seed, size, mix, geometry) is rejected instead of silently
     * reused.
     */
    std::uint64_t fingerprint() const;

  private:
    FleetConfig config_;
    std::vector<Vendor> vendors_;
    std::vector<DeviceModel> models_;
};

} // namespace drange::fleet

#endif // DRANGE_FLEET_POPULATION_HH
