/**
 * @file
 * The online re-profiling queue.
 *
 * A fleet device's profile goes stale three ways: its SP 800-90B
 * health monitor alarms (the selected cells stopped being metastable),
 * its temperature moves past a configured delta from the temperature
 * it was profiled at (Fprob is strongly temperature-dependent, paper
 * Section 5.3), or the profile simply ages past a bound while
 * predicted thermal drift accumulates. The Reprofiler is the queue
 * between those triggers and the re-profiling work: triggers enqueue
 * (deduplicated per device) from any thread, and the serving thread
 * drains the queue at safe points -- health-alarm entries during
 * trng::Service probation (the quarantine -> probation -> reinstate
 * lifecycle guarantees a device being re-profiled contributes no
 * bits), the rest at chunk boundaries.
 */

#ifndef DRANGE_FLEET_REPROFILER_HH
#define DRANGE_FLEET_REPROFILER_HH

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace drange::fleet {

enum class ReprofileReason {
    HealthAlarm,      //!< SP 800-90B monitor latched an alarm.
    TemperatureShift, //!< Moved past reprofile_delta_c from profile.
    ProfileAge,       //!< Older than max_profile_age_s.
};

/** @return "health-alarm", "temperature-shift", or "profile-age". */
const char *toString(ReprofileReason reason);

/** Lifetime counters, by trigger. */
struct ReprofilerStats
{
    std::uint64_t enqueued_health = 0;
    std::uint64_t enqueued_temperature = 0;
    std::uint64_t enqueued_age = 0;
    std::uint64_t deduplicated = 0; //!< Enqueues folded into a pending entry.
    std::uint64_t completed = 0;

    std::uint64_t enqueued() const
    {
        return enqueued_health + enqueued_temperature + enqueued_age;
    }
};

/**
 * Deduplicating re-profile queue. Thread-safe.
 */
class Reprofiler
{
  public:
    struct Entry
    {
        std::uint32_t device_id = 0;
        ReprofileReason reason = ReprofileReason::HealthAlarm;
    };

    /**
     * Queue @p device_id for re-profiling. A device already pending
     * keeps its first entry (the earliest reason wins; the re-profile
     * itself is identical) and the duplicate is only counted.
     *
     * @return true when the device was newly queued.
     */
    bool enqueue(std::uint32_t device_id, ReprofileReason reason);

    /** Pop the oldest entry, if any. */
    std::optional<Entry> pop();

    /** Pop every pending entry, oldest first. */
    std::vector<Entry> drain();

    /** Record one finished re-profile (stats only). */
    void markCompleted(std::uint32_t device_id);

    bool pending(std::uint32_t device_id) const;
    std::size_t pendingCount() const;
    ReprofilerStats stats() const;

  private:
    mutable std::mutex mu_;
    std::vector<Entry> queue_;
    ReprofilerStats stats_;
};

} // namespace drange::fleet

#endif // DRANGE_FLEET_REPROFILER_HH
