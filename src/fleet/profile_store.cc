#include "fleet/profile_store.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/profiler.hh"
#include "dram/direct_host.hh"

namespace drange::fleet {

namespace {

// The paper's RNG-cell screen (IdentifyParams defaults): cells whose
// measured Fprob sits in this band are metastable enough to serve.
constexpr double kScreenLo = 0.40;
constexpr double kScreenHi = 0.60;

/** Append the newest operating point, keeping at most four (oldest
 * dropped first; a same-temperature point is replaced in place). */
void
appendPoint(std::vector<OperatingPoint> &points, OperatingPoint op)
{
    for (auto &p : points) {
        if (std::abs(p.temperature_c - op.temperature_c) < 0.5f &&
            std::abs(p.trcd_ns - op.trcd_ns) < 0.01f) {
            p = op;
            return;
        }
    }
    points.push_back(op);
    if (points.size() > 4)
        points.erase(points.begin());
}

std::uint64_t
nowUnixMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

template <typename T>
void
putPod(std::ofstream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof value);
}

template <typename T>
bool
getPod(std::ifstream &in, T &value)
{
    in.read(reinterpret_cast<char *>(&value), sizeof value);
    return in.good();
}

} // anonymous namespace

std::size_t
DeviceProfile::storeBytes() const
{
    return 48 + 16 * points.size() + weak_set.sizeBytes();
}

double
DeviceProfile::ageSeconds() const
{
    const std::uint64_t now = nowUnixMs();
    return now > profiled_at_ms
               ? static_cast<double>(now - profiled_at_ms) / 1000.0
               : 0.0;
}

// ---------------------------------------------------------- profiler

ProfileResult
profileDevice(const DeviceModel &model, dram::DramDevice &device,
              const FleetConfig &config, const DeviceProfile *prior)
{
    const auto &geom = device.config().geometry;
    const core::DataPattern pattern =
        core::DataPattern::bestFor(device.config().manufacturer);
    dram::DirectHost host(device);
    core::ActivationFailureProfiler profiler(host);

    const int rows = std::min(config.profile_rows, geom.rows_per_bank);
    const int words =
        std::min(config.profile_words, geom.words_per_row);
    const bool warm = prior != nullptr;

    ProfileResult res;
    res.stats.store_hit = warm;
    BloomFilter bloom(static_cast<std::size_t>(config.bloom_bits),
                      config.bloom_hashes);
    double fprob_sum = 0.0;
    std::uint32_t weak_total = 0;

    for (int bank = 0; bank < geom.banks; ++bank) {
        dram::Region region;
        region.bank = bank;
        region.row_begin = 0;
        region.row_end = rows;
        region.word_begin = 0;
        region.word_end = words;

        // (row, word) -> RNG-cell bits and their measured Fprob.
        std::map<std::pair<int, int>, std::vector<int>> by_word;

        if (!warm) {
            // Cold pass: Algorithm 1 over the whole region.
            const core::FailureCounts counts = profiler.profile(
                region, pattern, config.screen_iterations,
                config.reduced_trcd_ns);
            res.stats.words_scanned +=
                static_cast<std::uint64_t>(rows) * words;
            res.stats.reads += static_cast<std::uint64_t>(rows) *
                               words * config.screen_iterations;
            for (int r = 0; r < rows; ++r) {
                for (int w = 0; w < words; ++w) {
                    for (int b = 0; b < 64; ++b) {
                        const double f = counts.fprob(r, w, b);
                        if (f < kScreenLo || f > kScreenHi)
                            continue;
                        by_word[{r, w}].push_back(b);
                        bloom.insert(cellKey(
                            bank, r,
                            static_cast<long long>(w) * 64 + b));
                        fprob_sum += f;
                        ++weak_total;
                    }
                }
            }
        } else {
            // Store hit: only words the Bloom filter flags are
            // sampled, and at the cheaper confirmation depth. Zero
            // false negatives means no profiled cell's word is ever
            // skipped; a false positive costs one word's worth of
            // confirmation reads.
            profiler.writePattern(region, pattern);
            for (int w = 0; w < words; ++w) {
                for (int r = 0; r < rows; ++r) {
                    bool flagged = false;
                    for (int b = 0; b < 64 && !flagged; ++b)
                        flagged = prior->weak_set.test(cellKey(
                            bank, r,
                            static_cast<long long>(w) * 64 + b));
                    if (!flagged) {
                        ++res.stats.words_skipped;
                        continue;
                    }
                    ++res.stats.words_scanned;
                    const std::uint64_t expected = pattern.wordAt(r, w);
                    int fails[64] = {};
                    for (int it = 0; it < config.confirm_iterations;
                         ++it) {
                        host.refreshRow(bank, r);
                        const std::uint64_t value = host.actReadPre(
                            bank, r, w, config.reduced_trcd_ns);
                        ++res.stats.reads;
                        std::uint64_t diff = value ^ expected;
                        while (diff) {
                            ++fails[std::countr_zero(diff)];
                            diff &= diff - 1;
                        }
                    }
                    for (int b = 0; b < 64; ++b) {
                        const double f =
                            static_cast<double>(fails[b]) /
                            config.confirm_iterations;
                        if (f < kScreenLo || f > kScreenHi)
                            continue;
                        by_word[{r, w}].push_back(b);
                        bloom.insert(cellKey(
                            bank, r,
                            static_cast<long long>(w) * 64 + b));
                        fprob_sum += f;
                        ++weak_total;
                    }
                }
            }
        }

        // Algorithm 2 line 3: the two densest RNG-cell words in
        // distinct rows of this bank (same ranking as
        // DRangeTrng::initialize).
        std::vector<std::pair<std::pair<int, int>, std::vector<int>>>
            ranked(by_word.begin(), by_word.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.size() > b.second.size();
                  });
        if (ranked.empty())
            continue;

        core::BankSelection sel;
        sel.bank = bank;
        sel.words[0] = {bank, ranked[0].first.first,
                        ranked[0].first.second};
        sel.bits[0] = ranked[0].second;
        bool found_second = false;
        for (std::size_t i = 1; i < ranked.size(); ++i) {
            if (ranked[i].first.first != sel.words[0].row) {
                sel.words[1] = {bank, ranked[i].first.first,
                                ranked[i].first.second};
                sel.bits[1] = ranked[i].second;
                found_second = true;
                break;
            }
        }
        if (!found_second)
            continue;
        for (int d = 0; d < 2; ++d)
            sel.pattern_word[d] =
                pattern.wordAt(sel.words[d].row, sel.words[d].word);
        res.selection.push_back(std::move(sel));
    }

    if (res.selection.empty())
        throw std::runtime_error(
            "fleet: device " + std::to_string(model.id) +
            " has no RNG-cell words in the profiled region (grow "
            "fleet.profile_rows / fleet.profile_words)");

    DeviceProfile &p = res.profile;
    p.device_id = model.id;
    p.device_fingerprint = model.fingerprint();
    p.generation = prior ? prior->generation + 1 : 0;
    p.profiled_temp_c = static_cast<float>(device.temperature());
    p.reduced_trcd_ns = static_cast<float>(config.reduced_trcd_ns);
    p.weak_cells = weak_total;
    p.profiled_at_ms = nowUnixMs();
    p.points = prior ? prior->points : std::vector<OperatingPoint>{};
    OperatingPoint op;
    op.trcd_ns = static_cast<float>(config.reduced_trcd_ns);
    op.temperature_c = p.profiled_temp_c;
    op.mean_fail_fraction = static_cast<float>(
        weak_total > 0 ? fprob_sum / weak_total : 0.0);
    op.weak_cells = weak_total;
    appendPoint(p.points, op);
    p.weak_set = std::move(bloom);
    return res;
}

// ------------------------------------------------------------- store

ProfileStore::ProfileStore(std::string path,
                           std::uint64_t population_fingerprint,
                           bool regenerate)
    : path_(std::move(path)), fingerprint_(population_fingerprint)
{
    if (path_.empty())
        return;
    std::ifstream probe(path_, std::ios::binary);
    if (!probe.good())
        return; // No store yet: every get() is a miss until put().
    probe.close();
    try {
        load();
    } catch (const std::runtime_error &) {
        if (!regenerate)
            throw;
        // Regenerate path: discard the stale store and re-profile.
        records_.clear();
        dirty_ = true;
    }
}

void
ProfileStore::load()
{
    std::ifstream in(path_, std::ios::binary);
    std::uint64_t magic = 0;
    std::uint32_t schema = 0, count = 0;
    std::uint64_t fingerprint = 0;
    if (!getPod(in, magic) || !getPod(in, schema) ||
        !getPod(in, count) || !getPod(in, fingerprint))
        throw std::runtime_error("fleet: profile store \"" + path_ +
                                 "\" is truncated");
    const std::string regen =
        " (delete the file or set fleet.store_regenerate = true to "
        "re-profile)";
    if (magic != kMagic)
        throw std::runtime_error("fleet: \"" + path_ +
                                 "\" is not a fleet profile store" +
                                 regen);
    if (schema != kSchemaVersion)
        throw std::runtime_error(
            "fleet: profile store \"" + path_ + "\" has schema "
            "version " + std::to_string(schema) + ", this build "
            "expects " + std::to_string(kSchemaVersion) + regen);
    if (fingerprint != fingerprint_)
        throw std::runtime_error(
            "fleet: profile store \"" + path_ + "\" was profiled "
            "for a different fleet population (fingerprint "
            "mismatch); stale profiles would select the wrong "
            "cells" + regen);

    std::map<std::uint32_t, DeviceProfile> records;
    for (std::uint32_t i = 0; i < count; ++i) {
        DeviceProfile p;
        std::uint64_t inserted = 0;
        std::uint16_t bloom_words = 0;
        std::uint8_t bloom_hashes = 0, num_points = 0;
        if (!getPod(in, p.device_id) || !getPod(in, p.generation) ||
            !getPod(in, p.device_fingerprint) ||
            !getPod(in, p.profiled_temp_c) ||
            !getPod(in, p.reduced_trcd_ns) ||
            !getPod(in, p.weak_cells) ||
            !getPod(in, p.profiled_at_ms) || !getPod(in, inserted) ||
            !getPod(in, bloom_words) || !getPod(in, bloom_hashes) ||
            !getPod(in, num_points))
            throw std::runtime_error("fleet: profile store \"" +
                                     path_ + "\" is truncated");
        if (num_points > 4 || bloom_hashes < 1 || bloom_hashes > 16 ||
            bloom_words == 0)
            throw std::runtime_error("fleet: profile store \"" +
                                     path_ +
                                     "\" has a corrupt record" + regen);
        p.points.resize(num_points);
        for (auto &op : p.points)
            if (!getPod(in, op.trcd_ns) ||
                !getPod(in, op.temperature_c) ||
                !getPod(in, op.mean_fail_fraction) ||
                !getPod(in, op.weak_cells))
                throw std::runtime_error("fleet: profile store \"" +
                                         path_ + "\" is truncated");
        std::vector<std::uint64_t> words(bloom_words);
        for (auto &w : words)
            if (!getPod(in, w))
                throw std::runtime_error("fleet: profile store \"" +
                                         path_ + "\" is truncated");
        p.weak_set = BloomFilter::fromWords(std::move(words),
                                            bloom_hashes, inserted);
        records.emplace(p.device_id, std::move(p));
    }
    records_ = std::move(records);
    dirty_ = false;
}

void
ProfileStore::save()
{
    std::unique_lock<std::mutex> lock(mu_);
    if (path_.empty() || !dirty_)
        return;
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out.good())
            throw std::runtime_error(
                "fleet: cannot write profile store \"" + tmp + "\"");
        putPod(out, kMagic);
        putPod(out, kSchemaVersion);
        putPod(out, static_cast<std::uint32_t>(records_.size()));
        putPod(out, fingerprint_);
        for (const auto &[id, p] : records_) {
            (void)id;
            putPod(out, p.device_id);
            putPod(out, p.generation);
            putPod(out, p.device_fingerprint);
            putPod(out, p.profiled_temp_c);
            putPod(out, p.reduced_trcd_ns);
            putPod(out, p.weak_cells);
            putPod(out, p.profiled_at_ms);
            putPod(out, p.weak_set.inserted());
            putPod(out, static_cast<std::uint16_t>(
                            p.weak_set.words().size()));
            putPod(out, static_cast<std::uint8_t>(
                            p.weak_set.hashes()));
            putPod(out,
                   static_cast<std::uint8_t>(p.points.size()));
            for (const auto &op : p.points) {
                putPod(out, op.trcd_ns);
                putPod(out, op.temperature_c);
                putPod(out, op.mean_fail_fraction);
                putPod(out, op.weak_cells);
            }
            for (const std::uint64_t w : p.weak_set.words())
                putPod(out, w);
        }
        if (!out.good())
            throw std::runtime_error(
                "fleet: short write to profile store \"" + tmp +
                "\"");
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0)
        throw std::runtime_error(
            "fleet: cannot rename \"" + tmp + "\" over \"" + path_ +
            "\"");
    dirty_ = false;
}

std::shared_ptr<ProfileStore>
ProfileStore::open(const std::string &path,
                   std::uint64_t population_fingerprint,
                   bool regenerate)
{
    if (path.empty())
        return std::make_shared<ProfileStore>(
            path, population_fingerprint, regenerate);

    static std::mutex cache_mu;
    static std::map<std::string, std::weak_ptr<ProfileStore>> cache;

    std::unique_lock<std::mutex> lock(cache_mu);
    if (auto it = cache.find(path); it != cache.end()) {
        if (auto store = it->second.lock()) {
            if (store->populationFingerprint() !=
                population_fingerprint)
                throw std::runtime_error(
                    "fleet: profile store \"" + path +
                    "\" is already open for a different fleet "
                    "population; pool members sharing a store must "
                    "share the [fleet] section");
            return store;
        }
    }
    auto store = std::make_shared<ProfileStore>(
        path, population_fingerprint, regenerate);
    cache[path] = store;
    return store;
}

std::optional<DeviceProfile>
ProfileStore::get(std::uint32_t device_id)
{
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = records_.find(device_id);
    if (it == records_.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    return it->second;
}

void
ProfileStore::put(DeviceProfile profile)
{
    std::unique_lock<std::mutex> lock(mu_);
    records_[profile.device_id] = std::move(profile);
    dirty_ = true;
}

std::size_t
ProfileStore::size() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return records_.size();
}

std::uint64_t
ProfileStore::hits() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return hits_;
}

std::uint64_t
ProfileStore::misses() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return misses_;
}

std::size_t
ProfileStore::fileBytes() const
{
    std::unique_lock<std::mutex> lock(mu_);
    std::size_t bytes = 24;
    for (const auto &[id, p] : records_) {
        (void)id;
        bytes += p.storeBytes();
    }
    return bytes;
}

} // namespace drange::fleet
