/**
 * @file
 * The fleet profile store: compact persistent per-device profiles.
 *
 * Profiling a DIMM (Algorithm 1 over the profile region) is the
 * expensive part of bringing a fleet device online. The store keeps
 * what a later startup needs to skip most of that work: a RAIDR-style
 * Bloom filter over the device's weak cells plus per-operating-point
 * summary statistics, about 300 bytes per device. A store-hit startup
 * only samples the words the filter flags (zero false negatives, so no
 * profiled cell is ever missed; false positives cost a few
 * confirmation reads), instead of screening the whole region.
 *
 * On disk the store is a single file with a versioned header (magic,
 * schema version, population fingerprint, record count). A header
 * whose schema version or fingerprint mismatches the running
 * configuration is *rejected* -- stale profiles silently selecting the
 * wrong cells would be an entropy bug, not a performance bug -- with
 * an error naming the regenerate path (delete the file, or set
 * fleet.store_regenerate = true to rebuild in place).
 */

#ifndef DRANGE_FLEET_PROFILE_STORE_HH
#define DRANGE_FLEET_PROFILE_STORE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/drange.hh"
#include "fleet/bloom.hh"
#include "fleet/device_model.hh"
#include "fleet/population.hh"

namespace drange::fleet {

/** Summary statistics of one profiled operating point. */
struct OperatingPoint
{
    float trcd_ns = 0.0f;
    float temperature_c = 0.0f;
    float mean_fail_fraction = 0.0f; //!< Mean Fprob of the weak cells.
    std::uint32_t weak_cells = 0;
};

/** One device's stored profile. */
struct DeviceProfile
{
    std::uint32_t device_id = 0;
    std::uint64_t device_fingerprint = 0;
    std::uint32_t generation = 0; //!< Bumped by every re-profile.
    float profiled_temp_c = 0.0f; //!< Temperature of the last profile.
    float reduced_trcd_ns = 0.0f;
    std::uint32_t weak_cells = 0;
    std::uint64_t profiled_at_ms = 0; //!< Unix milliseconds.
    std::vector<OperatingPoint> points; //!< Newest last, at most 4.
    BloomFilter weak_set;

    /** Serialized size of this record in the store file. */
    std::size_t storeBytes() const;

    /** Age relative to the current wall clock, in seconds. */
    double ageSeconds() const;
};

/** Counters of one profiling pass (cold or store-hit). */
struct ProfilerStats
{
    std::uint64_t words_scanned = 0; //!< Words actually sampled.
    std::uint64_t words_skipped = 0; //!< Bloom-screened words skipped.
    std::uint64_t reads = 0;         //!< Reduced-tRCD reads issued.
    bool store_hit = false;
};

/** Result of profiling one device. */
struct ProfileResult
{
    DeviceProfile profile;
    std::vector<core::BankSelection> selection;
    ProfilerStats stats;
};

/**
 * Profile @p device (Algorithm 1 over the [fleet] profile region) and
 * build the per-bank sampling selection. With @p prior set, runs the
 * store-hit path: only words with at least one Bloom-positive cell are
 * sampled, at confirm_iterations instead of screen_iterations.
 *
 * @throws std::runtime_error when no RNG cells are found (the device
 *         cannot serve).
 */
ProfileResult profileDevice(const DeviceModel &model,
                            dram::DramDevice &device,
                            const FleetConfig &config,
                            const DeviceProfile *prior);

/**
 * The store itself: an id-keyed map of DeviceProfile records with a
 * single-file persistent form. Thread-safe; one instance is shared by
 * every pool member configured with the same store path (see open()).
 */
class ProfileStore
{
  public:
    static constexpr std::uint64_t kMagic = 0x44524e47464c5431ull;
    static constexpr std::uint32_t kSchemaVersion = 1;

    /**
     * File-backed store: loads @p path when it exists, starts empty
     * otherwise. @p path empty builds an in-memory store.
     *
     * @throws std::runtime_error when the file exists but its header
     *         magic, schema version, or population fingerprint does
     *         not match -- unless @p regenerate, which discards the
     *         stale contents and starts empty.
     */
    ProfileStore(std::string path, std::uint64_t population_fingerprint,
                 bool regenerate);

    /**
     * Process-global open-by-path cache: pool members configured with
     * the same store file share one instance (and its lock), so
     * concurrent profiling cannot tear the file. Distinct populations
     * claiming the same path throw.
     */
    static std::shared_ptr<ProfileStore>
    open(const std::string &path, std::uint64_t population_fingerprint,
         bool regenerate);

    /** Stored profile of @p device_id, if any (a copy; the store's
     * record may be replaced concurrently). Counts hit/miss. */
    std::optional<DeviceProfile> get(std::uint32_t device_id);

    /** Insert or replace a record; marks the store dirty. */
    void put(DeviceProfile profile);

    /** Persist atomically (write-to-temp + rename). No-op for an
     * in-memory store or when nothing changed. */
    void save();

    std::size_t size() const;
    const std::string &path() const { return path_; }
    std::uint64_t populationFingerprint() const { return fingerprint_; }

    std::uint64_t hits() const;
    std::uint64_t misses() const;

    /** Serialized file size of the current contents, header included. */
    std::size_t fileBytes() const;

  private:
    void load();

    std::string path_;
    std::uint64_t fingerprint_ = 0;

    mutable std::mutex mu_;
    std::map<std::uint32_t, DeviceProfile> records_;
    bool dirty_ = false;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace drange::fleet

#endif // DRANGE_FLEET_PROFILE_STORE_HH
