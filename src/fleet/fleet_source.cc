/**
 * @file
 * The "fleet" entropy source: a slice of a fleet::Population serving
 * through the unified trng::EntropySource interface.
 *
 * The member instantiates its active devices lazily, bringing each one
 * online through the profile store (load-or-profile-on-miss: a store
 * hit only confirms the Bloom-flagged words, a miss runs the full cold
 * profile and persists the result). Generation round-robins harvest
 * rounds across the active devices; every device's bits pass through
 * its own SP 800-90B health monitor, and an alarm marks the device
 * suspect -- its bits are discarded, healthy() goes false, and the
 * device is queued with the Reprofiler. trng::Service then runs its
 * quarantine -> probation -> reinstate lifecycle: probation's
 * startContinuous() is where the queued re-profiles execute, so a
 * device being re-profiled never contributes bits. Temperature-shift
 * and profile-age triggers re-profile inline at chunk boundaries
 * instead (those devices are not suspect, only stale).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/drange.hh"
#include "dram/device.hh"
#include "fleet/fleet_source.hh"
#include "fleet/population.hh"
#include "fleet/profile_store.hh"
#include "fleet/reprofiler.hh"
#include "trng/health.hh"
#include "trng/registry.hh"
#include "util/entropy.hh"

namespace drange::fleet {

namespace detail {
void
linkFleetSource()
{
    // Link anchor only: referencing this function from
    // trng/registry.cc pulls this object file -- and the "fleet"
    // self-registration below -- out of the static library.
}
} // namespace detail

namespace {

std::int64_t
boundedInt(const trng::Params &params, const std::string &key,
           std::int64_t fallback, std::int64_t min)
{
    const std::int64_t value = params.getInt(key, fallback);
    if (value < min)
        throw std::invalid_argument(
            "trng source \"fleet\": parameter \"" + key +
            "\" must be >= " + std::to_string(min) + " (got " +
            std::to_string(value) + ")");
    return value;
}

double
hostMsNow()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

FleetSource::FleetSource(const trng::Params &params)
    : population_(FleetConfig::fromParams(params.section("fleet")))
{
    const auto &cfg = population_.config();

    const int max_active = static_cast<int>(population_.size());
    active_count_ = static_cast<int>(
        boundedInt(params, "active_devices",
                   std::min<std::int64_t>(4, max_active), 1));
    if (active_count_ > max_active)
        throw std::invalid_argument(
            "trng source \"fleet\": active_devices (" +
            std::to_string(active_count_) +
            ") exceeds the population (fleet.devices = " +
            std::to_string(max_active) + ")");
    device_offset_ = static_cast<int>(
        boundedInt(params, "device_offset", 0, 0));

    health_config_ = trng::HealthTestConfig::fromParams(params);
    setContinuousChunkBits(static_cast<std::size_t>(
        boundedInt(params, "chunk_bits", 4096, 1)));

    // Opening the store here (not at first generate()) means a stale
    // or foreign store file fails configuration validation, where
    // trngd --check-config reports it.
    store_ = ProfileStore::open(cfg.store, population_.fingerprint(),
                                cfg.store_regenerate);
    ambient_c_.store(cfg.ambient_c, std::memory_order_relaxed);

    params.rejectUnknown("trng source \"fleet\"");
    info_ = {"fleet",
             "D-RaNGe across a heterogeneous device fleet with a "
             "persistent profile store and online re-profiling",
             true};
}

FleetSource::~FleetSource() = default;

const trng::SourceInfo &
FleetSource::info() const
{
    return info_;
}

FleetSource::Active &
FleetSource::bringOnline(std::size_t slot)
{
    // Caller holds mu_.
    Active &a = *active_[slot];
    const std::size_t idx =
        (static_cast<std::size_t>(device_offset_) + slot) %
        population_.size();
    a.model = &population_.model(idx);
    a.device = population_.build(idx);
    a.device->setTemperature(ambient_c_.load(std::memory_order_relaxed) +
                             a.model->temp_offset_c);

    const double t0 = hostMsNow();
    std::optional<DeviceProfile> prior = store_->get(a.model->id);
    if (prior && prior->device_fingerprint != a.model->fingerprint())
        prior.reset(); // Same id, different die: profile from scratch.

    ProfileResult res = profileDevice(*a.model, *a.device,
                                      population_.config(),
                                      prior ? &*prior : nullptr);
    const double elapsed = hostMsNow() - t0;
    if (res.stats.store_hit) {
        ++fleet_stats_.store_hits;
        fleet_stats_.warm_profile_ms += elapsed;
    } else {
        ++fleet_stats_.cold_profiles;
        fleet_stats_.cold_profile_ms += elapsed;
    }
    fleet_stats_.words_scanned += res.stats.words_scanned;
    fleet_stats_.words_skipped += res.stats.words_skipped;
    fleet_stats_.profile_reads += res.stats.reads;

    store_->put(res.profile);
    store_->save();
    a.profiled_temp_c = res.profile.profiled_temp_c;
    a.profiled_at_ms = res.profile.profiled_at_ms;

    core::DRangeConfig engine_cfg;
    engine_cfg.reduced_trcd_ns = population_.config().reduced_trcd_ns;
    engine_cfg.identify.trcd_ns = engine_cfg.reduced_trcd_ns;
    a.engine = std::make_unique<core::DRangeTrng>(*a.device, engine_cfg);
    a.engine->initializeWith(std::move(res.selection));
    a.engine->enterSamplingMode();
    a.monitor =
        std::make_unique<trng::HealthTestStage>(health_config_);
    a.suspect = false;
    return a;
}

void
FleetSource::ensureActive()
{
    // Caller holds mu_.
    if (!active_.empty())
        return;
    active_.reserve(static_cast<std::size_t>(active_count_));
    for (int k = 0; k < active_count_; ++k) {
        active_.push_back(std::make_unique<Active>());
        bringOnline(static_cast<std::size_t>(k));
    }
}

void
FleetSource::reprofileSlot(std::size_t slot)
{
    // Caller holds mu_. Re-profile at the device's *current*
    // temperature: the prior profile seeds the Bloom-screened warm
    // pass, but cells that went stable at the new operating point are
    // re-screened out and new metastable ones found (the warm pass
    // only saves work on words that never held weak cells).
    Active &a = *active_[slot];
    const double t0 = hostMsNow();
    std::optional<DeviceProfile> prior = store_->get(a.model->id);
    ProfileResult res;
    try {
        res = profileDevice(*a.model, *a.device, population_.config(),
                            prior ? &*prior : nullptr);
    } catch (const std::runtime_error &) {
        // The warm pass can come up empty when every stored weak cell
        // went stable (a large temperature excursion moves the whole
        // metastable band). Fall back to a full cold scan.
        res = profileDevice(*a.model, *a.device, population_.config(),
                            nullptr);
    }
    fleet_stats_.reprofile_ms += hostMsNow() - t0;
    ++fleet_stats_.reprofiles;
    fleet_stats_.words_scanned += res.stats.words_scanned;
    fleet_stats_.words_skipped += res.stats.words_skipped;
    fleet_stats_.profile_reads += res.stats.reads;

    store_->put(res.profile);
    store_->save();
    a.profiled_temp_c = res.profile.profiled_temp_c;
    a.profiled_at_ms = res.profile.profiled_at_ms;
    a.engine->initializeWith(std::move(res.selection));
    a.engine->enterSamplingMode();
    a.monitor->reset();
    a.suspect = false;
    reprofiler_.markCompleted(a.model->id);
}

void
FleetSource::runStaleReprofiles()
{
    // Caller holds mu_. Drain TemperatureShift / ProfileAge entries
    // inline at the chunk boundary; HealthAlarm entries stay queued
    // for startContinuous() (the probation path), because an alarmed
    // device's bits must not resume until the service's lifecycle
    // says so.
    std::vector<Reprofiler::Entry> keep;
    for (auto &e : reprofiler_.drain()) {
        if (e.reason == ReprofileReason::HealthAlarm) {
            keep.push_back(e);
            continue;
        }
        for (std::size_t s = 0; s < active_.size(); ++s) {
            if (active_[s]->model->id == e.device_id) {
                reprofileSlot(s);
                break;
            }
        }
    }
    for (const auto &e : keep)
        reprofiler_.enqueue(e.device_id, e.reason);
}

util::BitStream
FleetSource::generate(std::size_t num_bits)
{
    std::unique_lock<std::mutex> lock(mu_);
    ensureActive();
    runStaleReprofiles();

    const auto &cfg = population_.config();
    util::BitStream out;
    double sim_ns = 0.0;
    double first64_ns = 0.0;

    // Round-robin harvest rounds across the non-suspect devices so
    // every chunk mixes the whole active slice. A suspect device keeps
    // sampling nothing: its cells are untrusted until re-profiled.
    std::size_t healthy_count = 0;
    for (const auto &a : active_)
        healthy_count += a->suspect ? 0 : 1;
    if (healthy_count == 0)
        throw std::runtime_error(
            "fleet: every active device is suspect; re-profile via "
            "startContinuous() before generating");

    while (out.size() < num_bits) {
        for (std::size_t s = 0; s < active_.size(); ++s) {
            Active &a = *active_[s];
            if (a.suspect)
                continue;

            // Age trigger: predicted drift has accumulated past the
            // profile-age bound.
            if (cfg.max_profile_age_s > 0.0 && !reprofiler_.pending(
                    a.model->id)) {
                DeviceProfile probe;
                probe.profiled_at_ms = a.profiled_at_ms;
                if (probe.ageSeconds() > cfg.max_profile_age_s)
                    reprofiler_.enqueue(a.model->id,
                                        ReprofileReason::ProfileAge);
            }

            util::BitStream round_bits;
            const double before = a.engine->scheduler().now();
            a.engine->runRound(round_bits);
            sim_ns += a.engine->scheduler().now() - before;

            // Per-device SP 800-90B gate: the monitor sees exactly
            // the bits this device contributed.
            a.monitor->process(round_bits);
            if (!a.monitor->healthy()) {
                a.suspect = true;
                ++fleet_stats_.alarms;
                reprofiler_.enqueue(a.model->id,
                                    ReprofileReason::HealthAlarm);
                // Bits of the alarming round are discarded with the
                // device.
                continue;
            }
            if (first64_ns == 0.0 &&
                out.size() + round_bits.size() >= 64)
                first64_ns = sim_ns;
            out.append(round_bits);
        }

        // Every device alarmed mid-chunk: surface the partial chunk
        // (possibly empty) instead of spinning; healthy() is false,
        // so the service quarantines the member either way.
        bool any_clean = false;
        for (const auto &a : active_)
            any_clean = any_clean || !a->suspect;
        if (!any_clean)
            break;
    }

    stats_ = trng::SourceStats{};
    stats_.bits = out.size();
    stats_.sim_ns = sim_ns;
    stats_.latency64_ns = first64_ns;
    trng::fillEntropyFields(stats_, out);
    return out;
}

void
FleetSource::startContinuous()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        ensureActive();
        // Probation entry point: re-profile everything queued --
        // health-alarmed devices included -- before any session bits
        // flow. The service discards probation output, so the first
        // post-re-profile chunks are judged before they ever reach
        // the reservoir.
        for (auto &e : reprofiler_.drain()) {
            for (std::size_t s = 0; s < active_.size(); ++s) {
                if (active_[s]->model->id == e.device_id) {
                    reprofileSlot(s);
                    break;
                }
            }
        }
        // A suspect device whose enqueue was deduplicated (or that
        // alarmed again between stop() and here) still needs its
        // profile refreshed.
        for (std::size_t s = 0; s < active_.size(); ++s)
            if (active_[s]->suspect)
                reprofileSlot(s);
        for (auto &a : active_)
            a->monitor->reset();
    }
    EntropySource::startContinuous();
}

bool
FleetSource::healthy() const
{
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto &a : active_)
        if (a->suspect)
            return false;
    return true;
}

void
FleetSource::setTemperature(double celsius)
{
    ambient_c_.store(celsius, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(mu_);
    const double delta_bound = population_.config().reprofile_delta_c;
    for (auto &ap : active_) {
        Active &a = *ap;
        a.device->setTemperature(celsius + a.model->temp_offset_c);
        if (std::abs(celsius + a.model->temp_offset_c -
                     a.profiled_temp_c) > delta_bound) {
            reprofiler_.enqueue(a.model->id,
                                ReprofileReason::TemperatureShift);
        }
    }
}

trng::SourceStats
FleetSource::stats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return stats_;
}

FleetStats
FleetSource::fleetStats() const
{
    std::unique_lock<std::mutex> lock(mu_);
    return fleet_stats_;
}

ReprofilerStats
FleetSource::reprofilerStats() const
{
    return reprofiler_.stats();
}

const Population &
FleetSource::population() const
{
    return population_;
}

ProfileStore &
FleetSource::profileStore()
{
    return *store_;
}

namespace {

std::unique_ptr<trng::EntropySource>
makeFleetSource(const trng::Params &params)
{
    return std::make_unique<FleetSource>(params);
}

} // anonymous namespace

DRANGE_TRNG_REGISTER(fleet, "fleet",
                     "D-RaNGe across a simulated device fleet: "
                     "heterogeneous DIMMs, Bloom-filter profile "
                     "store, online re-profiling",
                     makeFleetSource);

} // namespace drange::fleet
