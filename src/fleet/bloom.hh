/**
 * @file
 * Bloom-filter weak-cell sets for the fleet profile store.
 *
 * RAIDR keeps per-rank retention knowledge as Bloom filters instead of
 * cell lists; the fleet profile store borrows the idea for D-RaNGe
 * weak-cell sets: a device's profiled weak cells are inserted into a
 * fixed-size filter, so a 1000+ device store stays a few hundred bytes
 * per device regardless of how many cells the profile found. Membership
 * tests have zero false negatives by construction (a warm startup can
 * never miss a profiled cell) and a false-positive rate bounded by the
 * configured bits-per-key budget (a false positive merely costs a few
 * confirmation reads).
 *
 * Double hashing: h_i(key) = h1 + i * h2 (h2 forced odd), both derived
 * from util::mix64, the standard Kirsch-Mitzenmacher construction.
 */

#ifndef DRANGE_FLEET_BLOOM_HH
#define DRANGE_FLEET_BLOOM_HH

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hh"

namespace drange::fleet {

class BloomFilter
{
  public:
    BloomFilter() = default;

    /** @p bits is rounded up to a multiple of 64; @p hashes in 1..16. */
    BloomFilter(std::size_t bits, int hashes)
        : hashes_(hashes), bits_((bits + 63) / 64 * 64),
          words_((bits + 63) / 64, 0)
    {
        if (bits == 0)
            throw std::invalid_argument(
                "fleet: Bloom filter needs a nonzero bit budget");
        if (hashes < 1 || hashes > 16)
            throw std::invalid_argument(
                "fleet: Bloom hash count must be in 1..16 (got " +
                std::to_string(hashes) + ")");
    }

    void insert(std::uint64_t key)
    {
        const std::uint64_t h1 = util::mix64(key);
        const std::uint64_t h2 = util::mix64(key ^ kHashTweak) | 1;
        for (int i = 0; i < hashes_; ++i) {
            const std::uint64_t bit = (h1 + i * h2) % bits_;
            words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
        }
        ++inserted_;
    }

    bool test(std::uint64_t key) const
    {
        const std::uint64_t h1 = util::mix64(key);
        const std::uint64_t h2 = util::mix64(key ^ kHashTweak) | 1;
        for (int i = 0; i < hashes_; ++i) {
            const std::uint64_t bit = (h1 + i * h2) % bits_;
            if (!(words_[bit >> 6] & (std::uint64_t{1} << (bit & 63))))
                return false;
        }
        return true;
    }

    std::size_t bitCount() const { return bits_; }
    int hashes() const { return hashes_; }
    std::uint64_t inserted() const { return inserted_; }
    std::size_t sizeBytes() const { return words_.size() * 8; }

    /** Expected false-positive rate at the current load:
     * (1 - e^(-kn/m))^k. */
    double predictedFalsePositiveRate() const
    {
        if (bits_ == 0)
            return 1.0;
        const double k = hashes_;
        const double load = k * static_cast<double>(inserted_) /
                            static_cast<double>(bits_);
        return std::pow(1.0 - std::exp(-load), k);
    }

    /** Raw filter words (serialization). */
    const std::vector<std::uint64_t> &words() const { return words_; }

    static BloomFilter fromWords(std::vector<std::uint64_t> words,
                                 int hashes, std::uint64_t inserted)
    {
        BloomFilter f(words.size() * 64, hashes);
        f.words_ = std::move(words);
        f.inserted_ = inserted;
        return f;
    }

    bool operator==(const BloomFilter &o) const
    {
        return hashes_ == o.hashes_ && bits_ == o.bits_ &&
               inserted_ == o.inserted_ && words_ == o.words_;
    }

  private:
    static constexpr std::uint64_t kHashTweak = 0x9e3779b97f4a7c15ull;

    int hashes_ = 0;
    std::uint64_t bits_ = 0;
    std::vector<std::uint64_t> words_;
    std::uint64_t inserted_ = 0;
};

/** Canonical Bloom key of a cell: RAIDR packs (row, bank); the fleet
 * store additionally needs the column, so the key is the full cell
 * coordinate packed into one 64-bit word. */
inline std::uint64_t
cellKey(int bank, int row, long long column)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(row))
            << 32) |
           (static_cast<std::uint64_t>(static_cast<std::uint16_t>(bank))
            << 16) |
           static_cast<std::uint64_t>(
               static_cast<std::uint16_t>(column));
}

} // namespace drange::fleet

#endif // DRANGE_FLEET_BLOOM_HH
