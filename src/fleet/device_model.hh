/**
 * @file
 * Per-DIMM device models for the fleet subsystem.
 *
 * A fleet member is not "a DeviceConfig": it is a vendor family (which
 * fixes the address-mapping variant and the analog process profile)
 * plus per-DIMM variation -- a manufacturing seed, a static thermal
 * offset from its slot, a lognormal weak-cell density factor, and a
 * drift rate that ages its profile. DeviceModel layers all of that
 * onto a dram::DeviceConfig so one call builds the simulated DIMM.
 */

#ifndef DRANGE_FLEET_DEVICE_MODEL_HH
#define DRANGE_FLEET_DEVICE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dram/config.hh"

namespace drange::fleet {

/**
 * One vendor family: manufacturer process profile + the address
 * scrambling that vendor's parts use. Weights drive the population
 * mix ([fleet] mix.<vendor> keys).
 */
struct Vendor
{
    std::string name;
    dram::Manufacturer manufacturer = dram::Manufacturer::A;
    dram::AddressMapping mapping;
    double weight = 1.0;

    /** The three built-in vendor families (A: direct addressing,
     * B: subarray-reversed rows + bank rotation, C: XOR-scrambled
     * rows and column lines). */
    static std::vector<Vendor> builtin();
};

/**
 * One simulated DIMM of the fleet: identity, vendor, and the fully
 * layered device configuration.
 */
struct DeviceModel
{
    std::uint32_t id = 0;
    std::string vendor;

    /** Layered config: vendor profile + mapping, per-DIMM seed, slot
     * temperature offset, variability-scaled weak-cell density. */
    dram::DeviceConfig config;

    double temp_offset_c = 0.0;  //!< Static slot thermal offset.
    double variability = 1.0;    //!< Weak-cell density factor.
    double drift_c_per_hour = 0.0; //!< Predicted thermal drift rate.

    /**
     * Identity fingerprint: hashes everything a stored profile depends
     * on (vendor mapping, seed, geometry, density). A store record
     * whose fingerprint mismatches was profiled for a different die
     * and must not be reused.
     */
    std::uint64_t fingerprint() const;
};

} // namespace drange::fleet

#endif // DRANGE_FLEET_DEVICE_MODEL_HH
