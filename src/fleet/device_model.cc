#include "fleet/device_model.hh"

#include "util/rng.hh"

namespace drange::fleet {

std::vector<Vendor>
Vendor::builtin()
{
    std::vector<Vendor> v(3);

    v[0].name = "A";
    v[0].manufacturer = dram::Manufacturer::A;
    // Vendor A parts route addresses straight through (the legacy
    // single-device behaviour).

    v[1].name = "B";
    v[1].manufacturer = dram::Manufacturer::B;
    v[1].mapping.row_kind =
        dram::AddressMapping::RowKind::SubarrayReverse;
    v[1].mapping.bank_rotate = 3;

    v[2].name = "C";
    v[2].manufacturer = dram::Manufacturer::C;
    v[2].mapping.row_kind = dram::AddressMapping::RowKind::XorScramble;
    v[2].mapping.row_xor = 0x2a5;
    v[2].mapping.word_xor = 0x5;

    return v;
}

std::uint64_t
DeviceModel::fingerprint() const
{
    std::uint64_t h = 0x66c6a4aa1cfe5d2cull;
    auto mix = [&h](std::uint64_t v) { h = util::mix64(h ^ v); };
    for (const char c : vendor)
        mix(static_cast<std::uint64_t>(c));
    mix(config.seed);
    mix(static_cast<std::uint64_t>(config.manufacturer));
    mix(static_cast<std::uint64_t>(config.mapping.row_kind));
    mix(config.mapping.row_xor);
    mix(static_cast<std::uint64_t>(config.mapping.bank_rotate));
    mix(config.mapping.word_xor);
    mix(static_cast<std::uint64_t>(config.geometry.banks));
    mix(static_cast<std::uint64_t>(config.geometry.rows_per_bank));
    mix(static_cast<std::uint64_t>(config.geometry.words_per_row));
    // Quantized density factor: two profiles of the same die agree,
    // but an override that changes the density invalidates them.
    mix(static_cast<std::uint64_t>(variability * 1e6));
    return h;
}

} // namespace drange::fleet
