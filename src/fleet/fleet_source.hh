/**
 * @file
 * The "fleet" trng::EntropySource: serves entropy from a slice of a
 * fleet::Population, bringing devices online through the profile store
 * and re-profiling them online (see fleet/reprofiler.hh for the
 * trigger model). Registered with trng::Registry as "fleet"; this
 * header exists so tests and benches can downcast for the fleet-level
 * statistics the uniform SourceStats cannot carry.
 */

#ifndef DRANGE_FLEET_FLEET_SOURCE_HH
#define DRANGE_FLEET_FLEET_SOURCE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "fleet/population.hh"
#include "fleet/profile_store.hh"
#include "fleet/reprofiler.hh"
#include "trng/entropy_source.hh"
#include "trng/health.hh"

namespace drange::core {
class DRangeTrng;
}

namespace drange::fleet {

/** Lifetime counters of one fleet member's device management. */
struct FleetStats
{
    std::uint64_t cold_profiles = 0; //!< Store misses: full scans.
    std::uint64_t store_hits = 0;    //!< Bloom-screened startups.
    std::uint64_t reprofiles = 0;    //!< Online re-profiles completed.
    std::uint64_t alarms = 0;        //!< Per-device health alarms.
    double cold_profile_ms = 0.0;    //!< Host time in cold profiling.
    double warm_profile_ms = 0.0;    //!< Host time in store-hit startups.
    double reprofile_ms = 0.0;       //!< Host time re-profiling.
    std::uint64_t words_scanned = 0;
    std::uint64_t words_skipped = 0; //!< Bloom-screened words skipped.
    std::uint64_t profile_reads = 0;
};

class FleetSource final : public trng::EntropySource
{
  public:
    /** Member keys: active_devices, device_offset, chunk_bits, the
     * health_* keys (trng::HealthTestConfig::fromParams), plus the
     * whole [fleet] section as fleet.* sub-keys. */
    explicit FleetSource(const trng::Params &params);
    ~FleetSource() override;

    const trng::SourceInfo &info() const override;
    util::BitStream generate(std::size_t num_bits) override;
    void startContinuous() override;
    trng::SourceStats stats() const override;
    bool healthy() const override;
    void setTemperature(double celsius) override;

    FleetStats fleetStats() const;
    ReprofilerStats reprofilerStats() const;
    const Population &population() const;
    ProfileStore &profileStore();

  private:
    struct Active
    {
        const DeviceModel *model = nullptr;
        std::unique_ptr<dram::DramDevice> device;
        std::unique_ptr<core::DRangeTrng> engine;
        std::unique_ptr<trng::HealthTestStage> monitor;
        float profiled_temp_c = 0.0f;
        std::uint64_t profiled_at_ms = 0;
        bool suspect = false; //!< Alarmed; sampling suspended.
    };

    Active &bringOnline(std::size_t slot);
    void ensureActive();
    void reprofileSlot(std::size_t slot);
    void runStaleReprofiles();

    Population population_;
    std::shared_ptr<ProfileStore> store_;
    trng::HealthTestConfig health_config_;
    int active_count_ = 1;
    int device_offset_ = 0;
    std::atomic<double> ambient_c_{45.0};

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Active>> active_;
    Reprofiler reprofiler_;
    FleetStats fleet_stats_;
    trng::SourceStats stats_;
    trng::SourceInfo info_;
};

} // namespace drange::fleet

#endif // DRANGE_FLEET_FLEET_SOURCE_HH
