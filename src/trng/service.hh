/**
 * @file
 * Multi-client entropy service: a request broker over a pool of
 * registry-built EntropySource workers.
 *
 * The single-consumer API couples one caller to one source object:
 * generate() blocks its caller and startContinuous() allows exactly
 * one session. trng::Service turns that into a serving pipeline. It
 * owns a pool of sources (any mix of backends/channels, each built via
 * Registry::make from a PoolMemberConfig), pumps every member's
 * streaming session on its own worker thread into a shared
 * conditioned-bit reservoir, and serves any number of concurrent
 * client sessions (Service::open -> trng::Session) from that
 * reservoir with deficit-round-robin fairness weighted by session
 * priority.
 *
 * Three serving-pipeline behaviors live here:
 *
 *  - Adaptive chunk sizing: each worker grows its source's producer
 *    chunk when the reservoir runs dry (throughput-bound: fewer,
 *    larger hand-offs) and shrinks it when the reservoir or the
 *    source's internal ChunkQueue saturates (latency-bound: finer
 *    grain), between ServiceConfig::{min,max}_chunk_bits.
 *  - Health failover: a pool member whose SP 800-90B health stage
 *    alarms (EntropySource::healthy() turning false) is quarantined --
 *    its alarming chunk is dropped and its worker stops feeding the
 *    reservoir -- while the healthy members keep serving. Only when
 *    every member is quarantined/exhausted do outstanding reads fail.
 *    With ServiceConfig::reinstate enabled, quarantine is a lifecycle
 *    instead of a verdict: the member's worker periodically restarts
 *    the source (re-profiling it and resetting its health gates) and
 *    pumps a *probation* stream whose bits are counted but discarded
 *    -- never served -- until probation_windows consecutive clean
 *    chunks pass the gates, at which point the member rejoins the
 *    pool. A relapse during probation re-quarantines and retries.
 *  - Backpressure: the reservoir is bounded, so harvesting never runs
 *    ahead of client demand by more than ServiceConfig::reservoir_bits
 *    (workers block, which in turn blocks the sources' own producer
 *    threads through their internal queues).
 *
 * The reservoir is sharded (ServiceConfig::shards, default one shard
 * per pool member): each shard owns its own mutex, BitFifo, DRR
 * dispatcher thread, and a subset of pool members and sessions, so
 * aggregate throughput scales with the pool instead of funneling
 * through one lock. A shard whose reservoir runs dry while it has
 * outstanding demand steals bits from the fullest other shard
 * (work-stealing refill; a victim with pending demand of its own
 * yields at most half), which is also how sessions homed on a shard
 * whose only member got quarantined keep being served. Fairness and
 * quarantine/failover semantics are per shard; requests fail only
 * when every worker has stopped and every shard's reservoir is empty.
 *
 * A Service with a one-member pool is the old single-consumer path
 * behind the new API (see Service's convenience constructor). The
 * whole stack is configurable from a flat file via
 * ServiceConfig::fromParams + Params::fromFile -- that is what the
 * tools/trngd.cc daemon front-end does.
 */

#ifndef DRANGE_TRNG_SERVICE_HH
#define DRANGE_TRNG_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trng/conditioning.hh"
#include "trng/entropy_source.hh"
#include "trng/params.hh"
#include "trng/session.hh"
#include "util/bitstream.hh"

namespace drange::trng {

/** One pool member: a registry source name plus its Params. */
struct PoolMemberConfig
{
    std::string source; //!< trng::Registry name ("drange", ...).
    Params params;      //!< Factory parameters for that source.
    std::string label;  //!< Stats display name; defaults to source[i].
};

struct ServiceConfig
{
    std::vector<PoolMemberConfig> pool;

    /** Reservoir bound: harvesting blocks once this many conditioned
     * bits are buffered ahead of client demand. */
    std::size_t reservoir_bits = 1u << 20;

    /** Deficit-round-robin quantum: reservoir bits credited to a
     * priority-1 session per dispatch round (priority-w sessions get
     * w quanta). Smaller quanta interleave finer; larger amortize. */
    std::size_t quantum_bits = 4096;

    // ----------------------------------------- adaptive chunk sizing
    bool adaptive_chunking = true;
    std::size_t min_chunk_bits = 1024;
    std::size_t max_chunk_bits = 1u << 18;
    /** Reservoir fill fraction below which producer chunks grow. */
    double low_watermark = 0.25;
    /** Reservoir fill fraction above which producer chunks shrink. */
    double high_watermark = 0.75;
    /** Re-evaluate a member's chunk size every this many chunks. */
    int adapt_interval_chunks = 4;

    /**
     * Reservoir shards. Members and sessions are assigned home shards
     * round-robin; each shard gets reservoir_bits / shards capacity
     * and its own dispatcher. 0 (the default) means one shard per
     * pool member; values above the pool size are clamped down to it
     * (a shard with no member would live off stealing alone).
     */
    std::size_t shards = 0;

    /**
     * > 0: forwarded as the "conditioning_workers" Params key to every
     * "streaming"-source pool member that does not set it explicitly,
     * so one [service] knob turns on parallel conditioning across the
     * pool. 0 leaves member params untouched.
     */
    int conditioning_workers = 0;

    // ------------------------------------------ probation lifecycle
    /**
     * Quarantined members re-profile and rejoin after clean probation
     * (see the file comment). Disabled by default: quarantine is
     * permanent, the pre-lifecycle behavior.
     */
    bool reinstate = false;
    /** Cool-off before each probation attempt, milliseconds. */
    int probation_delay_ms = 200;
    /** Consecutive clean probation chunks required to rejoin. */
    int probation_windows = 3;
    /** Failed probation attempts before giving up (0 = keep trying
     * until the service closes). */
    int max_probation_attempts = 0;

    /**
     * Build from a flat Params bag (typically Params::fromFile):
     * service-level knobs from the [service] section, one pool member
     * per [pool.<label>] section, whose "source" key names the
     * registry backend and whose remaining keys become the source's
     * Params. Sections other than [service]/[pool.*] are left for the
     * caller (e.g. trngd's [trngd] and [session]).
     * @throws std::invalid_argument on unknown [service] keys, a
     *         missing source key, out-of-domain values, or an empty
     *         pool.
     */
    static ServiceConfig fromParams(const Params &params);
};

/** Snapshot of one pool member inside ServiceStats. */
struct MemberStats
{
    std::string label;
    std::string source;          //!< Registry name.
    std::uint64_t chunks = 0;    //!< Chunks pushed to the reservoir.
    std::uint64_t bits = 0;      //!< Bits pushed to the reservoir.
    std::size_t chunk_bits = 0;  //!< Current (adapted) chunk size.
    bool quarantined = false;    //!< Health alarm tripped; not serving.
    bool probation = false;      //!< Probation stream running now.
    bool active = false;         //!< Worker thread still alive.

    std::uint64_t quarantines = 0;    //!< Times quarantined.
    std::uint64_t reinstatements = 0; //!< Times rejoined the pool.
    std::uint64_t probation_attempts = 0;
    std::uint64_t probation_chunks = 0; //!< Probation chunks pumped.
    std::uint64_t probation_bits = 0;   //!< Discarded, never served.
};

/** Snapshot of one reservoir shard inside ServiceStats. */
struct ShardStats
{
    std::size_t members = 0;  //!< Pool members homed on this shard.
    std::size_t sessions = 0; //!< Sessions homed on this shard.
    std::size_t pending_requests = 0;

    std::uint64_t reservoir_bits = 0; //!< Buffered right now.
    std::uint64_t reservoir_capacity = 0;
    std::uint64_t reservoir_high_watermark = 0;

    std::uint64_t harvested_bits = 0;   //!< Pushed by home workers.
    std::uint64_t distributed_bits = 0; //!< Popped for home sessions.
    std::uint64_t steals = 0;      //!< Refills stolen from others.
    std::uint64_t stolen_bits = 0; //!< Bits those refills brought in.
};

/** Aggregate service measurements (all totals since construction). */
struct ServiceStats
{
    std::vector<MemberStats> members;
    std::vector<ShardStats> shards; //!< Per-shard breakdown.
    int healthy_members = 0;      //!< Members feeding the reservoir.
    int quarantined_members = 0;  //!< Quarantined (incl. probation).
    int probation_members = 0;    //!< Pumping a probation stream.
    std::uint64_t reinstatements = 0; //!< Members rejoined, total.
    std::size_t open_sessions = 0;
    std::size_t pending_requests = 0;

    std::uint64_t reservoir_bits = 0;     //!< Buffered right now.
    std::uint64_t reservoir_capacity = 0;
    std::uint64_t reservoir_high_watermark = 0;

    std::uint64_t harvested_bits = 0;   //!< Pushed by workers.
    std::uint64_t distributed_bits = 0; //!< Popped for sessions.
    std::uint64_t delivered_bits = 0;   //!< Returned by reads.
    std::uint64_t producer_waits = 0;   //!< Worker blocks on a full
                                        //!< reservoir (backpressure).
    std::uint64_t chunk_grows = 0;      //!< Adaptive grow steps.
    std::uint64_t chunk_shrinks = 0;    //!< Adaptive shrink steps.
    std::uint64_t steals = 0;           //!< Cross-shard refills.
    std::uint64_t stolen_bits = 0;      //!< Bits moved by steals.
};

namespace detail {

/** FIFO of bits stored as whole chunks with a front cursor, so pushes
 * are moves and pops only copy the bits they take. */
class BitFifo
{
  public:
    std::size_t size() const { return bits_; }
    bool empty() const { return bits_ == 0; }

    void push(util::BitStream bits);

    /** Remove and return the first @p count bits (count <= size()). */
    util::BitStream pop(std::size_t count);

    void clear();

  private:
    std::deque<util::BitStream> chunks_;
    std::size_t front_offset_ = 0;
    std::size_t bits_ = 0;
};

/** One queued read(); the promise resolves when `want` conditioned
 * bits are available in the session's buffer. */
struct ReadRequest
{
    std::size_t want = 0;
    std::promise<util::BitStream> promise;
};

/** Service-side state of one session; shared with the Session handle.
 * Everything here is guarded by the home shard's mutex. */
struct SessionState
{
    int id = 0;
    std::size_t shard = 0; //!< Home shard index (fixed at open()).
    int weight = 1;
    bool open = true;
    bool has_pipeline = false;
    bool flushed = false; //!< Pipeline tail emitted at supply end.
    bool healthy = true;  //!< False once the session's own pipeline
                          //!< (e.g. a "health" stage) latched an alarm.
    ConditioningPipeline pipeline;

    BitFifo buffer; //!< Conditioned bits awaiting requests.
    std::deque<std::unique_ptr<ReadRequest>> requests;
    std::size_t demand_bits = 0; //!< Sum of pending requests' want.
    std::size_t deficit = 0;     //!< DRR deficit counter, input bits.

    std::uint64_t consumed_bits = 0;  //!< Reservoir bits taken.
    std::uint64_t delivered_bits = 0; //!< Bits handed to the client.
    std::uint64_t reads = 0;
};

} // namespace detail

class Service
{
  public:
    /**
     * Build every pool member via Registry::make, then start one
     * worker thread per member plus the dispatcher.
     * @throws std::invalid_argument for an empty pool, an unknown
     *         source name, bad source Params, or a non-streaming
     *         member (e.g. "startup", which needs a power cycle per
     *         batch and cannot feed a continuous reservoir).
     */
    explicit Service(ServiceConfig config);

    /** The old single-consumer path as a pool-of-one service. */
    explicit Service(const std::string &source,
                     const Params &params = {});

    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /** Open a client session. @throws std::invalid_argument for a
     * priority < 1 or an unknown conditioning stage name;
     * std::logic_error once the service is closed. */
    Session open(SessionConfig config = {});

    ServiceStats stats() const;

    std::size_t poolSize() const { return members_.size(); }
    std::size_t shardCount() const { return shards_.size(); }

    /** Stop harvesting and fail outstanding requests. Idempotent; the
     * destructor calls it. Open Session handles remain safe to close
     * but every read on them fails. */
    void close();

  private:
    friend class Session;

    struct Member
    {
        std::string label;
        std::string source_name;
        std::unique_ptr<EntropySource> source;
        std::thread worker;
        std::size_t shard = 0; //!< Home shard (fixed at construction).

        // Guarded by the home shard's mu.
        std::uint64_t chunks = 0;
        std::uint64_t bits = 0;
        std::size_t chunk_bits = 0;
        bool quarantined = false;
        bool probation = false;
        bool done = false;
        std::uint64_t quarantines = 0;
        std::uint64_t reinstatements = 0;
        std::uint64_t probation_attempts = 0;
        std::uint64_t probation_chunks = 0;
        std::uint64_t probation_bits = 0;
    };

    /**
     * One reservoir shard: its own lock, BitFifo, DRR dispatcher, and
     * the sessions/members homed on it. Cross-shard interaction is
     * limited to work stealing, which never holds two shard mutexes
     * at once (pop from the victim under its lock, push home under
     * ours), so there is no lock ordering to get wrong.
     */
    struct Shard
    {
        mutable std::mutex mu;
        /** Threads parked on mu (or re-acquiring it inside a cv
         * wait). std::mutex is not fair: the dispatcher's serve loop
         * re-locks fast enough that a parked producer or probation
         * thread can lose the wake race indefinitely (observed as a
         * worker starved for the whole run). The dispatcher checks
         * this count and opens an unlocked window when it is
         * nonzero; every non-dispatcher acquisition goes through
         * fairLock() so it is counted. */
        mutable std::atomic<int> lock_waiters{0};
        std::condition_variable work_cv;  //!< Wakes the dispatcher.
        std::condition_variable space_cv; //!< Wakes blocked workers.
        std::thread dispatcher;
        std::size_t capacity_bits = 0; //!< reservoir_bits / shards.
        std::size_t member_count = 0;  //!< Members homed here.

        // Everything below is guarded by mu.
        detail::BitFifo reservoir;
        std::size_t high_watermark = 0;
        int drr_cursor = 0; //!< Last session id served; rounds resume
                            //!< after it so a drained reservoir does
                            //!< not starve high ids.
        std::map<int, std::shared_ptr<detail::SessionState>> sessions;
        std::size_t pending_requests = 0;
        std::uint64_t harvested_bits = 0;
        std::uint64_t distributed_bits = 0;
        std::uint64_t delivered_bits = 0;
        std::uint64_t producer_waits = 0;
        std::uint64_t chunk_grows = 0;
        std::uint64_t chunk_shrinks = 0;
        std::uint64_t steals = 0;      //!< Refills stolen into here.
        std::uint64_t stolen_bits = 0; //!< Bits those refills moved.
    };

    /** Acquire a shard's mutex as a counted waiter (see
     * Shard::lock_waiters). Everything except the shard's own
     * dispatcher must lock through this. */
    static std::unique_lock<std::mutex> fairLock(const Shard &shard);

    /** Dispatcher-side half of the fairness pact: when counted
     * waiters are parked on the shard mutex, release it and sleep
     * briefly unlocked so they actually get scheduled in. */
    static void yieldToWaiters(const Shard &shard,
                               std::unique_lock<std::mutex> &lock);

    void workerLoop(std::size_t member_idx);

    /** Serving loop of one member: pump chunks into the home
     * reservoir until the source ends (true) or its health gate trips
     * (false -- the alarming chunk is dropped). The streaming session
     * must already be open. */
    bool pumpMember(Member &m, Shard &home);

    /**
     * Quarantine recovery: repeatedly cool off, restart the source
     * (re-profile + fresh health gates), and pump a discarded
     * probation stream until probation_windows consecutive chunks
     * come back clean. True: the member may rejoin (its session is
     * open and healthy). False: closing, or attempts exhausted.
     */
    bool runProbation(Member &m, Shard &home);

    /** Sliced sleep that returns false early once close() starts. */
    bool sleepUnlessClosing(int ms) const;

    void dispatcherLoop(std::size_t shard_idx);

    /** One DRR round over @p shard with its mu held; true if any bits
     * moved. */
    bool serveRound(Shard &shard);

    /**
     * Steal up to half (all, if the victim has no pending demand of
     * its own) of the fullest other shard's reservoir for @p home.
     * Called with NO shard mutex held; locks one victim at a time.
     * Empty result: nothing to steal anywhere right now.
     */
    util::BitStream stealFor(std::size_t home_idx,
                             std::size_t max_bits);

    /**
     * True when supply is gone for good: every worker stopped, every
     * shard's reservoir empty, and no steal in flight that could make
     * bits reappear. Called with NO shard mutex held.
     */
    bool supplyExhausted() const;

    /** Pick the member's next chunk size (home mu held); 0 = keep. */
    std::size_t adaptedChunkBits(Shard &shard, Member &member);

    /** Complete every head request the buffer now covers (home mu
     * held). */
    void completeReady(Shard &shard, detail::SessionState &state);

    /** Fail a session's queued requests with @p why (home mu held). */
    void failRequests(Shard &shard, detail::SessionState &state,
                      const std::string &why);

    // Session-handle API (via friend Session).
    std::future<util::BitStream>
    submit(const std::shared_ptr<detail::SessionState> &state,
           std::size_t num_bits);
    SessionStats
    sessionStats(const std::shared_ptr<detail::SessionState> &state)
        const;
    void
    closeSession(const std::shared_ptr<detail::SessionState> &state);

    ServiceConfig config_;
    std::vector<std::unique_ptr<Member>> members_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::atomic<bool> closing_{false};
    std::atomic<int> live_workers_{0};
    /** Members inside the quarantine->probation lifecycle that may
     * still rejoin. While nonzero, pending reads wait for a
     * reinstatement instead of failing terminally. */
    std::atomic<int> recovering_workers_{0};
    std::atomic<int> next_session_id_{1};
    std::atomic<std::size_t> next_session_shard_{0};
    std::atomic<int> steals_in_flight_{0};   //!< Bits held mid-steal.
    std::atomic<std::uint64_t> steal_generation_{0}; //!< Completed
                                                     //!< steals.
};

} // namespace drange::trng

#endif // DRANGE_TRNG_SERVICE_HH
