#include "trng/service.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trng/registry.hh"

namespace drange::trng {

namespace detail {

void
BitFifo::push(util::BitStream bits)
{
    if (bits.empty())
        return;
    bits_ += bits.size();
    chunks_.push_back(std::move(bits));
}

util::BitStream
BitFifo::pop(std::size_t count)
{
    util::BitStream out;
    if (count == 0)
        return out;
    out.reserve(count);
    while (count > 0) {
        util::BitStream &front = chunks_.front();
        const std::size_t avail = front.size() - front_offset_;
        if (out.empty() && front_offset_ == 0 && count >= avail) {
            // Whole-chunk fast path: move instead of copying.
            out = std::move(front);
            chunks_.pop_front();
            bits_ -= avail;
            count -= avail;
            continue;
        }
        const std::size_t take = std::min(count, avail);
        out.append(front.slice(front_offset_, take));
        front_offset_ += take;
        bits_ -= take;
        count -= take;
        if (front_offset_ == front.size()) {
            chunks_.pop_front();
            front_offset_ = 0;
        }
    }
    return out;
}

void
BitFifo::clear()
{
    chunks_.clear();
    front_offset_ = 0;
    bits_ = 0;
}

} // namespace detail

namespace {

[[noreturn]] void
badConfig(const std::string &why)
{
    throw std::invalid_argument("trng::Service: " + why);
}

std::size_t
positiveSize(const Params &params, const std::string &key,
             std::size_t fallback)
{
    const std::int64_t value =
        params.getInt(key, static_cast<std::int64_t>(fallback));
    if (value < 1)
        badConfig("[service] " + key + " must be >= 1 (got " +
                  std::to_string(value) + ")");
    return static_cast<std::size_t>(value);
}

ServiceConfig
singleMemberConfig(const std::string &source, const Params &params)
{
    ServiceConfig cfg;
    cfg.pool.push_back(PoolMemberConfig{source, params, ""});
    return cfg;
}

} // anonymous namespace

ServiceConfig
ServiceConfig::fromParams(const Params &params)
{
    ServiceConfig cfg;
    const Params service = params.section("service");
    cfg.reservoir_bits =
        positiveSize(service, "reservoir_bits", cfg.reservoir_bits);
    cfg.quantum_bits =
        positiveSize(service, "quantum_bits", cfg.quantum_bits);
    cfg.adaptive_chunking =
        service.getBool("adaptive", cfg.adaptive_chunking);
    cfg.min_chunk_bits =
        positiveSize(service, "min_chunk_bits", cfg.min_chunk_bits);
    cfg.max_chunk_bits =
        positiveSize(service, "max_chunk_bits", cfg.max_chunk_bits);
    cfg.low_watermark =
        service.getDouble("low_watermark", cfg.low_watermark);
    cfg.high_watermark =
        service.getDouble("high_watermark", cfg.high_watermark);
    cfg.adapt_interval_chunks = static_cast<int>(positiveSize(
        service, "adapt_interval_chunks",
        static_cast<std::size_t>(cfg.adapt_interval_chunks)));
    service.rejectUnknown("trng::Service config [service]");

    for (const std::string &name : params.sections("pool")) {
        const Params member = params.section(name);
        PoolMemberConfig pm;
        pm.label = name.substr(std::string("pool.").size());
        pm.source = member.getString("source");
        if (pm.source.empty())
            badConfig("[" + name + "] must set \"source\" to a "
                      "registry name");
        for (const std::string &key : member.keys())
            if (key != "source")
                pm.params.set(key, member.getString(key));
        cfg.pool.push_back(std::move(pm));
    }
    if (cfg.pool.empty())
        badConfig("config defines no [pool.<label>] sections");
    return cfg;
}

Service::Service(ServiceConfig config) : config_(std::move(config))
{
    if (config_.pool.empty())
        badConfig("pool is empty");
    if (config_.reservoir_bits == 0 || config_.quantum_bits == 0 ||
        config_.min_chunk_bits == 0)
        badConfig("reservoir_bits, quantum_bits, and min_chunk_bits "
                  "must all be >= 1");
    if (config_.min_chunk_bits > config_.max_chunk_bits)
        badConfig("min_chunk_bits > max_chunk_bits");
    if (config_.low_watermark > config_.high_watermark)
        badConfig("low_watermark > high_watermark");
    if (config_.adapt_interval_chunks < 1)
        badConfig("adapt_interval_chunks must be >= 1");

    members_.reserve(config_.pool.size());
    for (std::size_t i = 0; i < config_.pool.size(); ++i) {
        const PoolMemberConfig &pm = config_.pool[i];
        auto member = std::make_unique<Member>();
        member->label = pm.label.empty()
                            ? pm.source + "[" + std::to_string(i) + "]"
                            : pm.label;
        member->source_name = pm.source;
        member->source = Registry::make(pm.source, pm.params);
        if (!member->source->info().streaming)
            badConfig("pool member \"" + member->label + "\" (" +
                      pm.source +
                      ") cannot stream and cannot feed a continuous "
                      "reservoir; use bounded generate() directly");
        member->chunk_bits =
            std::clamp(member->source->chunkBits(),
                       config_.min_chunk_bits, config_.max_chunk_bits);
        member->source->setChunkBits(member->chunk_bits);
        members_.push_back(std::move(member));
    }

    live_workers_ = static_cast<int>(members_.size());
    dispatcher_ = std::thread(&Service::dispatcherLoop, this);
    for (std::size_t i = 0; i < members_.size(); ++i)
        members_[i]->worker =
            std::thread(&Service::workerLoop, this, i);
}

Service::Service(const std::string &source, const Params &params)
    : Service(singleMemberConfig(source, params))
{
}

Service::~Service()
{
    close();
}

void
Service::workerLoop(std::size_t member_idx)
{
    Member &m = *members_[member_idx];
    bool quarantine = false;
    try {
        m.source->startContinuous();
        int since_adapt = 0;
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (closing_)
                    break;
            }
            std::optional<util::BitStream> chunk =
                m.source->nextChunk();
            if (!chunk)
                break; // Source exhausted or stopped.
            if (!m.source->healthy()) {
                // SP 800-90B alarm: the bits that tripped it are
                // suspect, so the alarming chunk is dropped with the
                // member.
                quarantine = true;
                break;
            }
            if (chunk->empty())
                continue;

            std::size_t new_chunk_bits = 0;
            {
                std::unique_lock<std::mutex> lock(mu_);
                if (!reservoir_.empty() &&
                    reservoir_.size() + chunk->size() >
                        config_.reservoir_bits) {
                    // Backpressure: hold the chunk until clients make
                    // room (a chunk larger than the reservoir is
                    // admitted alone).
                    ++producer_waits_;
                    space_cv_.wait(lock, [&] {
                        return closing_ || reservoir_.empty() ||
                               reservoir_.size() + chunk->size() <=
                                   config_.reservoir_bits;
                    });
                }
                if (closing_)
                    break;
                const std::size_t pushed = chunk->size();
                reservoir_.push(std::move(*chunk));
                reservoir_high_watermark_ = std::max(
                    reservoir_high_watermark_, reservoir_.size());
                harvested_bits_ += pushed;
                ++m.chunks;
                m.bits += pushed;
                if (config_.adaptive_chunking &&
                    ++since_adapt >= config_.adapt_interval_chunks) {
                    since_adapt = 0;
                    new_chunk_bits = adaptedChunkBits(m);
                }
                work_cv_.notify_one();
            }
            // Applied outside mu_: only this worker touches its
            // source, so no lock is needed.
            if (new_chunk_bits != 0)
                m.source->setChunkBits(new_chunk_bits);
        }
    } catch (...) {
        // A source that dies mid-session is handled like a tripped
        // one: quarantine it and fail over to the remaining members.
        quarantine = true;
    }

    std::lock_guard<std::mutex> lock(mu_);
    m.quarantined = m.quarantined || quarantine;
    m.done = true;
    --live_workers_;
    work_cv_.notify_all(); // The dispatcher may need to fail requests.
}

std::size_t
Service::adaptedChunkBits(Member &member)
{
    // Two pressure signals pick the direction: the reservoir fill
    // fraction (clients vs. pool) and the source's own hand-off queue
    // (harvest threads vs. this worker). A starved reservoir wants
    // throughput, so chunks grow to amortize per-chunk hand-off cost;
    // a saturated reservoir or source queue means production is ahead,
    // so chunks shrink back toward low-latency fine grain.
    const double fill = static_cast<double>(reservoir_.size()) /
                        static_cast<double>(config_.reservoir_bits);
    const BackpressureStats bp = member.source->backpressure();
    const bool source_saturated =
        bp.queue_capacity > 0 && bp.queue_depth >= bp.queue_capacity;

    std::size_t next = member.chunk_bits;
    if (fill < config_.low_watermark)
        next = std::min(member.chunk_bits * 2, config_.max_chunk_bits);
    else if (fill > config_.high_watermark || source_saturated)
        next = std::max(member.chunk_bits / 2, config_.min_chunk_bits);
    if (next == member.chunk_bits)
        return 0;
    if (next > member.chunk_bits)
        ++chunk_grows_;
    else
        ++chunk_shrinks_;
    member.chunk_bits = next;
    return next;
}

void
Service::dispatcherLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [&] {
            return closing_ ||
                   (pending_requests_ > 0 &&
                    (!reservoir_.empty() || live_workers_ == 0));
        });
        if (closing_)
            break;

        while (serveRound()) {
        }

        if (pending_requests_ > 0 && live_workers_ == 0 &&
            reservoir_.empty()) {
            // Supply is gone for good: flush session pipelines (a
            // stateful stage may still hold a tail), then fail
            // whatever cannot complete.
            for (auto &[id, state] : sessions_) {
                if (state->has_pipeline && !state->flushed) {
                    state->flushed = true;
                    state->buffer.push(state->pipeline.finish());
                    completeReady(*state);
                }
            }
            for (auto &[id, state] : sessions_)
                failRequests(*state,
                             "entropy service: every pool member is "
                             "quarantined or exhausted");
        }
    }
    for (auto &[id, state] : sessions_)
        failRequests(*state, "entropy service closed");
}

bool
Service::serveRound()
{
    if (sessions_.empty() || reservoir_.empty())
        return false;
    bool any = false;

    // One visit per session, resuming after the session served last so
    // a reservoir that drains mid-round does not starve high ids.
    std::vector<detail::SessionState *> order;
    order.reserve(sessions_.size());
    for (auto it = sessions_.upper_bound(drr_cursor_);
         it != sessions_.end(); ++it)
        order.push_back(it->second.get());
    for (auto it = sessions_.begin();
         it != sessions_.end() && it->first <= drr_cursor_; ++it)
        order.push_back(it->second.get());

    for (detail::SessionState *sp : order) {
        detail::SessionState &s = *sp;
        if (reservoir_.empty())
            break;
        if (!s.healthy)
            continue; // Alarmed: its reads already failed.
        if (s.requests.empty()) {
            s.deficit = 0; // Standard DRR: idle queues bank nothing.
            continue;
        }
        const std::size_t buffered = s.buffer.size();
        const std::size_t outstanding =
            s.demand_bits > buffered ? s.demand_bits - buffered : 0;
        if (outstanding == 0)
            continue;
        s.deficit +=
            config_.quantum_bits * static_cast<std::size_t>(s.weight);
        // Conditioning may need more input than `outstanding` output
        // bits (von Neumann eats ~4x); later rounds provide it.
        const std::size_t take =
            std::min({s.deficit, reservoir_.size(), outstanding});
        if (take == 0)
            continue;

        util::BitStream in = reservoir_.pop(take);
        space_cv_.notify_all();
        s.deficit -= take;
        s.consumed_bits += take;
        distributed_bits_ += take;
        util::BitStream out = s.has_pipeline ? s.pipeline.process(in)
                                             : std::move(in);
        if (s.has_pipeline && !s.pipeline.healthy()) {
            // The session's own health stage latched an alarm: the
            // stream serving this client is suspect, so drop the
            // alarming output and everything buffered, fail its
            // reads, and refuse new ones (submit checks healthy).
            // Pool members keep serving the other sessions.
            s.healthy = false;
            s.buffer.clear();
            failRequests(s, "entropy service session: SP 800-90B "
                            "health alarm in the session's "
                            "conditioning pipeline");
            drr_cursor_ = s.id;
            any = true;
            continue;
        }
        s.buffer.push(std::move(out));
        completeReady(s);
        drr_cursor_ = s.id;
        any = true;
    }
    return any;
}

void
Service::completeReady(detail::SessionState &state)
{
    while (!state.requests.empty() &&
           state.buffer.size() >= state.requests.front()->want) {
        std::unique_ptr<detail::ReadRequest> req =
            std::move(state.requests.front());
        state.requests.pop_front();
        --pending_requests_;
        state.demand_bits -= req->want;
        util::BitStream bits = state.buffer.pop(req->want);
        state.delivered_bits += bits.size();
        delivered_bits_ += bits.size();
        ++state.reads;
        req->promise.set_value(std::move(bits));
    }
}

void
Service::failRequests(detail::SessionState &state,
                      const std::string &why)
{
    while (!state.requests.empty()) {
        std::unique_ptr<detail::ReadRequest> req =
            std::move(state.requests.front());
        state.requests.pop_front();
        --pending_requests_;
        state.demand_bits -= req->want;
        req->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(why)));
    }
}

Session
Service::open(SessionConfig config)
{
    if (config.priority < 1)
        throw std::invalid_argument(
            "Service::open: priority must be >= 1 (got " +
            std::to_string(config.priority) + ")");
    auto state = std::make_shared<detail::SessionState>();
    state->weight = config.priority;
    state->has_pipeline = !config.conditioning.empty();
    state->pipeline =
        makePipeline(config.conditioning, config.stage_params);
    state->pipeline.reset();

    std::lock_guard<std::mutex> lock(mu_);
    if (closing_)
        throw std::logic_error("Service::open: service is closed");
    state->id = next_session_id_++;
    sessions_.emplace(state->id, state);
    return Session(this, std::move(state));
}

std::future<util::BitStream>
Service::submit(const std::shared_ptr<detail::SessionState> &state,
                std::size_t num_bits)
{
    auto req = std::make_unique<detail::ReadRequest>();
    req->want = num_bits;
    std::future<util::BitStream> future = req->promise.get_future();

    std::lock_guard<std::mutex> lock(mu_);
    if (closing_ || !state->open) {
        req->promise.set_exception(std::make_exception_ptr(
            std::runtime_error("entropy service session is closed")));
        return future;
    }
    if (!state->healthy) {
        req->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "entropy service session: SP 800-90B health alarm in "
                "the session's conditioning pipeline")));
        return future;
    }
    state->requests.push_back(std::move(req));
    state->demand_bits += num_bits;
    ++pending_requests_;
    // Leftover conditioned bits from an earlier round may already
    // cover the request (and num_bits == 0 always completes here).
    completeReady(*state);
    if (pending_requests_ > 0)
        work_cv_.notify_one();
    return future;
}

SessionStats
Service::sessionStats(
    const std::shared_ptr<detail::SessionState> &state) const
{
    std::lock_guard<std::mutex> lock(mu_);
    SessionStats out;
    out.id = state->id;
    out.priority = state->weight;
    out.reservoir_bits = state->consumed_bits;
    out.delivered_bits = state->delivered_bits;
    out.reads = state->reads;
    out.buffered_bits = state->buffer.size();
    out.healthy = state->healthy;
    for (const auto &stage : state->pipeline.accounting())
        out.health_failures += stage.health_failures;
    return out;
}

void
Service::closeSession(
    const std::shared_ptr<detail::SessionState> &state)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!state->open)
        return;
    state->open = false;
    failRequests(*state, "entropy service session closed");
    state->buffer.clear();
    sessions_.erase(state->id);
    // Dropping a big consumer may unblock producers' space waits.
    space_cv_.notify_all();
}

ServiceStats
Service::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    ServiceStats out;
    out.members.reserve(members_.size());
    for (const auto &member : members_) {
        MemberStats ms;
        ms.label = member->label;
        ms.source = member->source_name;
        ms.chunks = member->chunks;
        ms.bits = member->bits;
        ms.chunk_bits = member->chunk_bits;
        ms.quarantined = member->quarantined;
        ms.active = !member->done;
        out.members.push_back(std::move(ms));
    }
    out.healthy_members = live_workers_;
    out.open_sessions = sessions_.size();
    out.pending_requests = pending_requests_;
    out.reservoir_bits = reservoir_.size();
    out.reservoir_capacity = config_.reservoir_bits;
    out.reservoir_high_watermark = reservoir_high_watermark_;
    out.harvested_bits = harvested_bits_;
    out.distributed_bits = distributed_bits_;
    out.delivered_bits = delivered_bits_;
    out.producer_waits = producer_waits_;
    out.chunk_grows = chunk_grows_;
    out.chunk_shrinks = chunk_shrinks_;
    return out;
}

void
Service::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closing_ = true;
        work_cv_.notify_all();
        space_cv_.notify_all();
    }
    for (auto &member : members_)
        if (member->worker.joinable())
            member->worker.join();
    if (dispatcher_.joinable())
        dispatcher_.join();
    for (auto &member : members_) {
        try {
            member->source->stop();
        } catch (...) {
            // Producer errors belong to the session being torn down.
        }
    }
}

} // namespace drange::trng
