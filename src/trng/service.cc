#include "trng/service.hh"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fleet/population.hh"
#include "trng/registry.hh"

namespace drange::trng {

namespace detail {

void
BitFifo::push(util::BitStream bits)
{
    if (bits.empty())
        return;
    bits_ += bits.size();
    chunks_.push_back(std::move(bits));
}

util::BitStream
BitFifo::pop(std::size_t count)
{
    util::BitStream out;
    if (count == 0)
        return out;
    out.reserve(count);
    while (count > 0) {
        util::BitStream &front = chunks_.front();
        const std::size_t avail = front.size() - front_offset_;
        if (out.empty() && front_offset_ == 0 && count >= avail) {
            // Whole-chunk fast path: move instead of copying.
            out = std::move(front);
            chunks_.pop_front();
            bits_ -= avail;
            count -= avail;
            continue;
        }
        const std::size_t take = std::min(count, avail);
        out.append(front.slice(front_offset_, take));
        front_offset_ += take;
        bits_ -= take;
        count -= take;
        if (front_offset_ == front.size()) {
            chunks_.pop_front();
            front_offset_ = 0;
        }
    }
    return out;
}

void
BitFifo::clear()
{
    chunks_.clear();
    front_offset_ = 0;
    bits_ = 0;
}

} // namespace detail

namespace {

[[noreturn]] void
badConfig(const std::string &why)
{
    throw std::invalid_argument("trng::Service: " + why);
}

std::size_t
positiveSize(const Params &params, const std::string &key,
             std::size_t fallback)
{
    const std::int64_t value =
        params.getInt(key, static_cast<std::int64_t>(fallback));
    if (value < 1)
        badConfig("[service] " + key + " must be >= 1 (got " +
                  std::to_string(value) + ")");
    return static_cast<std::size_t>(value);
}

ServiceConfig
singleMemberConfig(const std::string &source, const Params &params)
{
    ServiceConfig cfg;
    cfg.pool.push_back(PoolMemberConfig{source, params, ""});
    return cfg;
}

} // anonymous namespace

ServiceConfig
ServiceConfig::fromParams(const Params &params)
{
    ServiceConfig cfg;
    const Params service = params.section("service");
    cfg.reservoir_bits =
        positiveSize(service, "reservoir_bits", cfg.reservoir_bits);
    cfg.quantum_bits =
        positiveSize(service, "quantum_bits", cfg.quantum_bits);
    cfg.adaptive_chunking =
        service.getBool("adaptive", cfg.adaptive_chunking);
    cfg.min_chunk_bits =
        positiveSize(service, "min_chunk_bits", cfg.min_chunk_bits);
    cfg.max_chunk_bits =
        positiveSize(service, "max_chunk_bits", cfg.max_chunk_bits);
    cfg.low_watermark =
        service.getDouble("low_watermark", cfg.low_watermark);
    cfg.high_watermark =
        service.getDouble("high_watermark", cfg.high_watermark);
    cfg.adapt_interval_chunks = static_cast<int>(positiveSize(
        service, "adapt_interval_chunks",
        static_cast<std::size_t>(cfg.adapt_interval_chunks)));
    const std::int64_t shards = service.getInt(
        "shards", static_cast<std::int64_t>(cfg.shards));
    if (shards < 0)
        badConfig("[service] shards must be >= 0 (0 = one per pool "
                  "member; got " + std::to_string(shards) + ")");
    cfg.shards = static_cast<std::size_t>(shards);
    const std::int64_t cond_workers = service.getInt(
        "conditioning_workers",
        static_cast<std::int64_t>(cfg.conditioning_workers));
    if (cond_workers < 0)
        badConfig("[service] conditioning_workers must be >= 0 (got " +
                  std::to_string(cond_workers) + ")");
    cfg.conditioning_workers = static_cast<int>(cond_workers);
    cfg.reinstate = service.getBool("reinstate", cfg.reinstate);
    const std::int64_t delay = service.getInt(
        "probation_delay_ms",
        static_cast<std::int64_t>(cfg.probation_delay_ms));
    if (delay < 0)
        badConfig("[service] probation_delay_ms must be >= 0 (got " +
                  std::to_string(delay) + ")");
    cfg.probation_delay_ms = static_cast<int>(delay);
    cfg.probation_windows = static_cast<int>(positiveSize(
        service, "probation_windows",
        static_cast<std::size_t>(cfg.probation_windows)));
    const std::int64_t max_attempts = service.getInt(
        "max_probation_attempts",
        static_cast<std::int64_t>(cfg.max_probation_attempts));
    if (max_attempts < 0)
        badConfig("[service] max_probation_attempts must be >= 0 "
                  "(got " + std::to_string(max_attempts) + ")");
    cfg.max_probation_attempts = static_cast<int>(max_attempts);
    service.rejectUnknown("trng::Service config [service]");

    // One [fleet] section describes the device population for the
    // whole pool: its keys fan out to every "fleet" member (as
    // fleet.* sub-keys, explicit per-member values winning), so the
    // members agree on device identities and can share one profile
    // store. Validate it eagerly -- a typo'd [fleet] key must fail
    // configuration even when no member consumes the section.
    const Params fleet_section = params.section("fleet");
    if (!fleet_section.keys().empty())
        (void)fleet::FleetConfig::fromParams(fleet_section);

    for (const std::string &name : params.sections("pool")) {
        const Params member = params.section(name);
        PoolMemberConfig pm;
        pm.label = name.substr(std::string("pool.").size());
        pm.source = member.getString("source");
        if (pm.source.empty())
            badConfig("[" + name + "] must set \"source\" to a "
                      "registry name");
        for (const std::string &key : member.keys())
            if (key != "source")
                pm.params.set(key, member.getString(key));
        // One [service] knob fans parallel conditioning out to the
        // whole pool; only the "streaming" source takes the key, and
        // an explicit per-member value wins.
        if (cfg.conditioning_workers > 0 && pm.source == "streaming" &&
            !pm.params.has("conditioning_workers"))
            pm.params.set("conditioning_workers",
                          std::to_string(cfg.conditioning_workers));
        if (pm.source == "fleet")
            for (const std::string &key : fleet_section.keys())
                if (!pm.params.has("fleet." + key))
                    pm.params.set("fleet." + key,
                                  fleet_section.getString(key));
        cfg.pool.push_back(std::move(pm));
    }
    if (cfg.pool.empty())
        badConfig("config defines no [pool.<label>] sections");
    return cfg;
}

Service::Service(ServiceConfig config) : config_(std::move(config))
{
    if (config_.pool.empty())
        badConfig("pool is empty");
    if (config_.reservoir_bits == 0 || config_.quantum_bits == 0 ||
        config_.min_chunk_bits == 0)
        badConfig("reservoir_bits, quantum_bits, and min_chunk_bits "
                  "must all be >= 1");
    if (config_.min_chunk_bits > config_.max_chunk_bits)
        badConfig("min_chunk_bits > max_chunk_bits");
    if (config_.low_watermark > config_.high_watermark)
        badConfig("low_watermark > high_watermark");
    if (config_.adapt_interval_chunks < 1)
        badConfig("adapt_interval_chunks must be >= 1");

    // One shard per member by default; explicit counts are clamped to
    // the pool size (a shard with no member would live off stealing
    // alone and just add latency).
    const std::size_t shard_count =
        std::clamp<std::size_t>(config_.shards == 0 ? config_.pool.size()
                                                    : config_.shards,
                                1, config_.pool.size());
    shards_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->capacity_bits =
            std::max<std::size_t>(1, config_.reservoir_bits / shard_count);
        shards_.push_back(std::move(shard));
    }

    members_.reserve(config_.pool.size());
    for (std::size_t i = 0; i < config_.pool.size(); ++i) {
        const PoolMemberConfig &pm = config_.pool[i];
        auto member = std::make_unique<Member>();
        member->label = pm.label.empty()
                            ? pm.source + "[" + std::to_string(i) + "]"
                            : pm.label;
        member->source_name = pm.source;
        member->source = Registry::make(pm.source, pm.params);
        if (!member->source->info().streaming)
            badConfig("pool member \"" + member->label + "\" (" +
                      pm.source +
                      ") cannot stream and cannot feed a continuous "
                      "reservoir; use bounded generate() directly");
        member->chunk_bits =
            std::clamp(member->source->chunkBits(),
                       config_.min_chunk_bits, config_.max_chunk_bits);
        member->source->setChunkBits(member->chunk_bits);
        member->shard = i % shard_count;
        ++shards_[member->shard]->member_count;
        members_.push_back(std::move(member));
    }

    live_workers_.store(static_cast<int>(members_.size()),
                        std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards_.size(); ++s)
        shards_[s]->dispatcher =
            std::thread(&Service::dispatcherLoop, this, s);
    for (std::size_t i = 0; i < members_.size(); ++i)
        members_[i]->worker =
            std::thread(&Service::workerLoop, this, i);
}

Service::Service(const std::string &source, const Params &params)
    : Service(singleMemberConfig(source, params))
{
}

Service::~Service()
{
    close();
}

std::unique_lock<std::mutex>
Service::fairLock(const Shard &shard)
{
    shard.lock_waiters.fetch_add(1, std::memory_order_acq_rel);
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    while (!lock.owns_lock()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        (void)lock.try_lock();
    }
    shard.lock_waiters.fetch_sub(1, std::memory_order_acq_rel);
    return lock;
}

void
Service::yieldToWaiters(const Shard &shard,
                        std::unique_lock<std::mutex> &lock)
{
    if (shard.lock_waiters.load(std::memory_order_acquire) == 0)
        return;
    // Unlocking wakes one parked waiter, but it still has to be
    // scheduled before it can take the mutex; sleeping unlocked keeps
    // this thread from snatching it back first.
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    lock.lock();
}

void
Service::workerLoop(std::size_t member_idx)
{
    Member &m = *members_[member_idx];
    Shard &home = *shards_[m.shard];

    // Every dispatcher may need to re-evaluate on a lifecycle edge
    // (fail requests once the last worker anywhere stops; resume
    // serving on a reinstatement), not just the home shard's.
    auto notifyDispatchers = [this] {
        for (const auto &shard : shards_) {
            const std::unique_lock<std::mutex> lock = fairLock(*shard);
            shard->work_cv.notify_all();
        }
    };

    bool need_start = true;
    for (;;) {
        bool quarantine = false;
        try {
            if (need_start) {
                m.source->startContinuous();
                need_start = false;
            }
            quarantine = !pumpMember(m, home);
        } catch (...) {
            // A source that dies mid-session is handled like a
            // tripped one: quarantine it and fail over to the
            // remaining members.
            quarantine = true;
        }

        if (!quarantine || closing_.load(std::memory_order_acquire)) {
            // Clean end: exhausted/stopped. The member was serving,
            // so it still counts against live_workers_.
            {
                const std::unique_lock<std::mutex> lock = fairLock(home);
                m.done = true;
            }
            live_workers_.fetch_sub(1, std::memory_order_acq_rel);
            notifyDispatchers();
            return;
        }

        // SP 800-90B alarm (or source death): the bits that tripped
        // it are suspect, so the alarming chunk was dropped with the
        // member. A quarantined member does not count as a live
        // worker; with the lifecycle enabled it counts as recovering
        // *before* live_workers_ drops, so the dispatchers never see
        // both counters at zero and fail reads that a reinstatement
        // would have served.
        {
            const std::unique_lock<std::mutex> lock = fairLock(home);
            m.quarantined = true;
            ++m.quarantines;
        }
        if (config_.reinstate)
            recovering_workers_.fetch_add(1, std::memory_order_acq_rel);
        live_workers_.fetch_sub(1, std::memory_order_acq_rel);
        notifyDispatchers();

        if (!config_.reinstate || !runProbation(m, home)) {
            // Permanent quarantine (lifecycle disabled, attempts
            // exhausted, or the service is closing). Already
            // subtracted from live_workers_ above.
            {
                const std::unique_lock<std::mutex> lock = fairLock(home);
                m.probation = false;
                m.done = true;
            }
            if (config_.reinstate)
                recovering_workers_.fetch_sub(1,
                                              std::memory_order_acq_rel);
            notifyDispatchers();
            return;
        }

        // Clean probation: rejoin the pool and keep pumping the
        // probation attempt's (still open, still clean) session.
        // live_workers_ rises before recovering_workers_ drops, again
        // keeping the dispatchers' (live + recovering) view nonzero.
        {
            const std::unique_lock<std::mutex> lock = fairLock(home);
            m.quarantined = false;
            m.probation = false;
            ++m.reinstatements;
        }
        live_workers_.fetch_add(1, std::memory_order_acq_rel);
        recovering_workers_.fetch_sub(1, std::memory_order_acq_rel);
        notifyDispatchers();
    }
}

bool
Service::pumpMember(Member &m, Shard &home)
{
    int since_adapt = 0;
    for (;;) {
        if (closing_.load(std::memory_order_acquire))
            return true;
        std::optional<util::BitStream> chunk = m.source->nextChunk();
        if (!chunk)
            return true; // Source exhausted or stopped.
        if (!m.source->healthy())
            return false; // Alarm: drop the chunk, quarantine.
        if (chunk->empty())
            continue;

        std::size_t new_chunk_bits = 0;
        {
            std::unique_lock<std::mutex> lock = fairLock(home);
            if (!home.reservoir.empty() &&
                home.reservoir.size() + chunk->size() >
                    home.capacity_bits) {
                // Backpressure: hold the chunk until clients make
                // room (a chunk larger than the shard's share of
                // the reservoir is admitted alone).
                ++home.producer_waits;
                // Counted across the wait: every wake re-acquires the
                // mutex, and those re-acquisitions must not lose to
                // the dispatcher's serve loop forever either.
                home.lock_waiters.fetch_add(1, std::memory_order_acq_rel);
                home.space_cv.wait(lock, [&] {
                    return closing_.load(std::memory_order_acquire) ||
                           home.reservoir.empty() ||
                           home.reservoir.size() + chunk->size() <=
                               home.capacity_bits;
                });
                home.lock_waiters.fetch_sub(1, std::memory_order_acq_rel);
            }
            if (closing_.load(std::memory_order_acquire))
                return true;
            const std::size_t pushed = chunk->size();
            home.reservoir.push(std::move(*chunk));
            home.high_watermark = std::max(home.high_watermark,
                                           home.reservoir.size());
            home.harvested_bits += pushed;
            ++m.chunks;
            m.bits += pushed;
            if (config_.adaptive_chunking &&
                ++since_adapt >= config_.adapt_interval_chunks) {
                since_adapt = 0;
                new_chunk_bits = adaptedChunkBits(home, m);
            }
            home.work_cv.notify_one();
        }
        // Applied outside the shard lock: only this worker touches
        // its source, so no lock is needed.
        if (new_chunk_bits != 0)
            m.source->setChunkBits(new_chunk_bits);
    }
}

bool
Service::sleepUnlessClosing(int ms) const
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (std::chrono::steady_clock::now() < deadline) {
        if (closing_.load(std::memory_order_acquire))
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return !closing_.load(std::memory_order_acquire);
}

bool
Service::runProbation(Member &m, Shard &home)
{
    int attempts = 0;
    while (!closing_.load(std::memory_order_acquire)) {
        // Drop the alarmed session, cool off, then re-profile: for a
        // streaming source startContinuous() relaunches the producers
        // and resets every conditioning/health stage, so the gates
        // judge the post-restart stream from scratch.
        try {
            m.source->stop();
        } catch (...) {
            // The session being torn down owns its producer errors.
        }
        if (!sleepUnlessClosing(config_.probation_delay_ms))
            return false;
        ++attempts;
        {
            const std::unique_lock<std::mutex> lock = fairLock(home);
            m.probation = true;
            ++m.probation_attempts;
        }
        bool clean = true;
        int windows = 0;
        try {
            m.source->startContinuous();
            while (windows < config_.probation_windows) {
                if (closing_.load(std::memory_order_acquire))
                    return false;
                std::optional<util::BitStream> chunk =
                    m.source->nextChunk();
                if (!chunk) {
                    clean = false; // Died mid-probation.
                    break;
                }
                // Probation output is counted but *discarded*: none
                // of it ever reaches the reservoir.
                {
                    const std::unique_lock<std::mutex> lock = fairLock(home);
                    ++m.probation_chunks;
                    m.probation_bits += chunk->size();
                }
                if (!m.source->healthy()) {
                    clean = false; // Relapse: re-quarantine.
                    break;
                }
                ++windows;
            }
        } catch (...) {
            clean = false;
        }
        if (closing_.load(std::memory_order_acquire))
            return false;
        if (clean)
            return true;
        {
            const std::unique_lock<std::mutex> lock = fairLock(home);
            m.probation = false;
        }
        if (config_.max_probation_attempts > 0 &&
            attempts >= config_.max_probation_attempts)
            return false;
    }
    return false;
}

std::size_t
Service::adaptedChunkBits(Shard &shard, Member &member)
{
    // Two pressure signals pick the direction: the home shard's fill
    // fraction (clients vs. pool) and the source's own hand-off queue
    // (harvest threads vs. this worker). A starved reservoir wants
    // throughput, so chunks grow to amortize per-chunk hand-off cost;
    // a saturated reservoir or source queue means production is ahead,
    // so chunks shrink back toward low-latency fine grain.
    const double fill = static_cast<double>(shard.reservoir.size()) /
                        static_cast<double>(shard.capacity_bits);
    const BackpressureStats bp = member.source->backpressure();
    const bool source_saturated =
        bp.queue_capacity > 0 && bp.queue_depth >= bp.queue_capacity;

    std::size_t next = member.chunk_bits;
    if (fill < config_.low_watermark)
        next = std::min(member.chunk_bits * 2, config_.max_chunk_bits);
    else if (fill > config_.high_watermark || source_saturated)
        next = std::max(member.chunk_bits / 2, config_.min_chunk_bits);
    if (next == member.chunk_bits)
        return 0;
    if (next > member.chunk_bits)
        ++shard.chunk_grows;
    else
        ++shard.chunk_shrinks;
    member.chunk_bits = next;
    return next;
}

void
Service::dispatcherLoop(std::size_t shard_idx)
{
    Shard &sh = *shards_[shard_idx];
    std::unique_lock<std::mutex> lock(sh.mu);
    while (!closing_.load(std::memory_order_acquire)) {
        while (serveRound(sh))
            yieldToWaiters(sh, lock);

        if (sh.pending_requests == 0) {
            sh.work_cv.wait(lock, [&] {
                return closing_.load(std::memory_order_acquire) ||
                       sh.pending_requests > 0;
            });
            continue;
        }

        // Outstanding demand and (post-serve) a dry reservoir. First
        // try to steal a refill from another shard -- this is both the
        // load balancer and the failover path for sessions homed on a
        // shard whose members all got quarantined.
        if (shards_.size() > 1) {
            const std::size_t want = sh.capacity_bits;
            steals_in_flight_.fetch_add(1, std::memory_order_acq_rel);
            lock.unlock();
            util::BitStream loot = stealFor(shard_idx, want);
            lock.lock();
            if (!loot.empty()) {
                ++sh.steals;
                sh.stolen_bits += loot.size();
                sh.reservoir.push(std::move(loot));
                sh.high_watermark = std::max(sh.high_watermark,
                                             sh.reservoir.size());
                steals_in_flight_.fetch_sub(1,
                                            std::memory_order_acq_rel);
                steal_generation_.fetch_add(1,
                                            std::memory_order_release);
                continue; // Serve the refill.
            }
            steals_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        }

        if (live_workers_.load(std::memory_order_acquire) == 0 &&
            recovering_workers_.load(std::memory_order_acquire) == 0) {
            lock.unlock();
            const bool exhausted = supplyExhausted();
            lock.lock();
            if (closing_.load(std::memory_order_acquire))
                break;
            if (exhausted && sh.reservoir.empty()) {
                // Supply is gone for good: flush session pipelines (a
                // stateful stage may still hold a tail), then fail
                // whatever cannot complete.
                for (auto &[id, state] : sh.sessions) {
                    if (state->has_pipeline && !state->flushed) {
                        state->flushed = true;
                        state->buffer.push(state->pipeline.finish());
                        completeReady(sh, *state);
                    }
                }
                for (auto &[id, state] : sh.sessions)
                    failRequests(sh, *state,
                                 "entropy service: every pool member "
                                 "is quarantined or exhausted");
                continue;
            }
            if (!sh.reservoir.empty())
                continue; // A steal landed mid-check: serve it.
        }

        // Bits may arrive from our own workers (notified) or pile up
        // in other shards (not notified -- hence the timeout, which
        // paces the steal retries while we starve).
        sh.work_cv.wait_for(
            lock, std::chrono::milliseconds(1), [&] {
                return closing_.load(std::memory_order_acquire) ||
                       !sh.reservoir.empty() ||
                       sh.pending_requests == 0;
            });
    }
    for (auto &[id, state] : sh.sessions)
        failRequests(sh, *state, "entropy service closed");
}

util::BitStream
Service::stealFor(std::size_t home_idx, std::size_t max_bits)
{
    // Probe sizes first (one victim lock at a time, never two), then
    // raid the fullest victim. The second lock re-reads the size: the
    // probe is only a heuristic and the victim may have drained.
    std::size_t best = shards_.size();
    std::size_t best_size = 0;
    for (std::size_t v = 0; v < shards_.size(); ++v) {
        if (v == home_idx)
            continue;
        const std::unique_lock<std::mutex> lock = fairLock(*shards_[v]);
        if (shards_[v]->reservoir.size() > best_size) {
            best_size = shards_[v]->reservoir.size();
            best = v;
        }
    }
    if (best == shards_.size())
        return {};

    Shard &victim = *shards_[best];
    const std::unique_lock<std::mutex> lock = fairLock(victim);
    const std::size_t avail = victim.reservoir.size();
    if (avail == 0)
        return {};
    // A victim with pending demand of its own keeps at least half;
    // an idle one yields everything (its workers keep producing, and
    // it can steal back if demand arrives).
    std::size_t grab =
        victim.pending_requests > 0 ? avail - avail / 2 : avail;
    grab = std::min(grab, max_bits);
    if (grab == 0)
        return {};
    util::BitStream loot = victim.reservoir.pop(grab);
    victim.space_cv.notify_all();
    return loot;
}

bool
Service::supplyExhausted() const
{
    // Terminal only if every reservoir is empty AND no steal holds
    // bits in hand mid-move. The generation re-check closes the
    // window where a steal starts after the in-flight probe and
    // finishes before the scan does: any bits moved during the scan
    // bump the generation.
    for (int attempt = 0; attempt < 8; ++attempt) {
        if (steals_in_flight_.load(std::memory_order_acquire) != 0)
            return false;
        const std::uint64_t gen =
            steal_generation_.load(std::memory_order_acquire);
        bool all_empty = true;
        for (const auto &shard : shards_) {
            const std::unique_lock<std::mutex> lock = fairLock(*shard);
            if (!shard->reservoir.empty()) {
                all_empty = false;
                break;
            }
        }
        if (!all_empty)
            return false;
        if (steals_in_flight_.load(std::memory_order_acquire) == 0 &&
            steal_generation_.load(std::memory_order_acquire) == gen)
            return true;
    }
    return false;
}

bool
Service::serveRound(Shard &sh)
{
    if (sh.sessions.empty() || sh.reservoir.empty())
        return false;
    bool any = false;

    // One visit per session, resuming after the session served last so
    // a reservoir that drains mid-round does not starve high ids.
    std::vector<detail::SessionState *> order;
    order.reserve(sh.sessions.size());
    for (auto it = sh.sessions.upper_bound(sh.drr_cursor);
         it != sh.sessions.end(); ++it)
        order.push_back(it->second.get());
    for (auto it = sh.sessions.begin();
         it != sh.sessions.end() && it->first <= sh.drr_cursor; ++it)
        order.push_back(it->second.get());

    for (detail::SessionState *sp : order) {
        detail::SessionState &s = *sp;
        if (sh.reservoir.empty())
            break;
        if (!s.healthy)
            continue; // Alarmed: its reads already failed.
        if (s.requests.empty()) {
            s.deficit = 0; // Standard DRR: idle queues bank nothing.
            continue;
        }
        const std::size_t buffered = s.buffer.size();
        const std::size_t outstanding =
            s.demand_bits > buffered ? s.demand_bits - buffered : 0;
        if (outstanding == 0)
            continue;
        s.deficit +=
            config_.quantum_bits * static_cast<std::size_t>(s.weight);
        // Conditioning may need more input than `outstanding` output
        // bits (von Neumann eats ~4x); later rounds provide it.
        const std::size_t take =
            std::min({s.deficit, sh.reservoir.size(), outstanding});
        if (take == 0)
            continue;

        util::BitStream in = sh.reservoir.pop(take);
        sh.space_cv.notify_all();
        s.deficit -= take;
        s.consumed_bits += take;
        sh.distributed_bits += take;
        util::BitStream out = s.has_pipeline
                                  ? s.pipeline.process(std::move(in))
                                  : std::move(in);
        if (s.has_pipeline && !s.pipeline.healthy()) {
            // The session's own health stage latched an alarm: the
            // stream serving this client is suspect, so drop the
            // alarming output and everything buffered, fail its
            // reads, and refuse new ones (submit checks healthy).
            // Pool members keep serving the other sessions.
            s.healthy = false;
            s.buffer.clear();
            failRequests(sh, s,
                         "entropy service session: SP 800-90B "
                         "health alarm in the session's "
                         "conditioning pipeline");
            sh.drr_cursor = s.id;
            any = true;
            continue;
        }
        s.buffer.push(std::move(out));
        completeReady(sh, s);
        sh.drr_cursor = s.id;
        any = true;
    }
    return any;
}

void
Service::completeReady(Shard &sh, detail::SessionState &state)
{
    while (!state.requests.empty() &&
           state.buffer.size() >= state.requests.front()->want) {
        std::unique_ptr<detail::ReadRequest> req =
            std::move(state.requests.front());
        state.requests.pop_front();
        --sh.pending_requests;
        state.demand_bits -= req->want;
        util::BitStream bits = state.buffer.pop(req->want);
        state.delivered_bits += bits.size();
        sh.delivered_bits += bits.size();
        ++state.reads;
        req->promise.set_value(std::move(bits));
    }
}

void
Service::failRequests(Shard &sh, detail::SessionState &state,
                      const std::string &why)
{
    while (!state.requests.empty()) {
        std::unique_ptr<detail::ReadRequest> req =
            std::move(state.requests.front());
        state.requests.pop_front();
        --sh.pending_requests;
        state.demand_bits -= req->want;
        req->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(why)));
    }
}

Session
Service::open(SessionConfig config)
{
    if (config.priority < 1)
        throw std::invalid_argument(
            "Service::open: priority must be >= 1 (got " +
            std::to_string(config.priority) + ")");
    auto state = std::make_shared<detail::SessionState>();
    state->weight = config.priority;
    state->has_pipeline = !config.conditioning.empty();
    state->pipeline =
        makePipeline(config.conditioning, config.stage_params);
    state->pipeline.reset();

    // Home shard round-robin over open() order; the id is global so
    // session ids stay unique and monotonic across shards.
    state->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    state->shard = next_session_shard_.fetch_add(
                       1, std::memory_order_relaxed) %
                   shards_.size();
    Shard &sh = *shards_[state->shard];
    const std::unique_lock<std::mutex> lock = fairLock(sh);
    if (closing_.load(std::memory_order_acquire))
        throw std::logic_error("Service::open: service is closed");
    sh.sessions.emplace(state->id, state);
    return Session(this, std::move(state));
}

std::future<util::BitStream>
Service::submit(const std::shared_ptr<detail::SessionState> &state,
                std::size_t num_bits)
{
    auto req = std::make_unique<detail::ReadRequest>();
    req->want = num_bits;
    std::future<util::BitStream> future = req->promise.get_future();

    Shard &sh = *shards_[state->shard];
    const std::unique_lock<std::mutex> lock = fairLock(sh);
    if (closing_.load(std::memory_order_acquire) || !state->open) {
        req->promise.set_exception(std::make_exception_ptr(
            std::runtime_error("entropy service session is closed")));
        return future;
    }
    if (!state->healthy) {
        req->promise.set_exception(
            std::make_exception_ptr(std::runtime_error(
                "entropy service session: SP 800-90B health alarm in "
                "the session's conditioning pipeline")));
        return future;
    }
    state->requests.push_back(std::move(req));
    state->demand_bits += num_bits;
    ++sh.pending_requests;
    // Leftover conditioned bits from an earlier round may already
    // cover the request (and num_bits == 0 always completes here).
    completeReady(sh, *state);
    if (sh.pending_requests > 0)
        sh.work_cv.notify_one();
    return future;
}

SessionStats
Service::sessionStats(
    const std::shared_ptr<detail::SessionState> &state) const
{
    const std::unique_lock<std::mutex> lock =
        fairLock(*shards_[state->shard]);
    SessionStats out;
    out.id = state->id;
    out.priority = state->weight;
    out.reservoir_bits = state->consumed_bits;
    out.delivered_bits = state->delivered_bits;
    out.reads = state->reads;
    out.buffered_bits = state->buffer.size();
    out.healthy = state->healthy;
    for (const auto &stage : state->pipeline.accounting())
        out.health_failures += stage.health_failures;
    return out;
}

void
Service::closeSession(
    const std::shared_ptr<detail::SessionState> &state)
{
    Shard &sh = *shards_[state->shard];
    const std::unique_lock<std::mutex> lock = fairLock(sh);
    if (!state->open)
        return;
    state->open = false;
    failRequests(sh, *state, "entropy service session closed");
    state->buffer.clear();
    sh.sessions.erase(state->id);
    // Dropping a big consumer may unblock producers' space waits.
    sh.space_cv.notify_all();
}

ServiceStats
Service::stats() const
{
    // One shard lock at a time (stealing obeys the same rule, so
    // there is no ordering to violate); the snapshot is per-shard
    // consistent, globally approximate -- like any live counter read.
    ServiceStats out;
    out.members.reserve(members_.size());
    for (const auto &member : members_) {
        const std::unique_lock<std::mutex> lock =
            fairLock(*shards_[member->shard]);
        MemberStats ms;
        ms.label = member->label;
        ms.source = member->source_name;
        ms.chunks = member->chunks;
        ms.bits = member->bits;
        ms.chunk_bits = member->chunk_bits;
        ms.quarantined = member->quarantined;
        ms.probation = member->probation;
        ms.active = !member->done;
        ms.quarantines = member->quarantines;
        ms.reinstatements = member->reinstatements;
        ms.probation_attempts = member->probation_attempts;
        ms.probation_chunks = member->probation_chunks;
        ms.probation_bits = member->probation_bits;
        if (ms.quarantined)
            ++out.quarantined_members;
        if (ms.probation)
            ++out.probation_members;
        out.reinstatements += ms.reinstatements;
        out.members.push_back(std::move(ms));
    }
    out.healthy_members = live_workers_.load(std::memory_order_acquire);
    out.shards.reserve(shards_.size());
    for (const auto &shard : shards_) {
        const std::unique_lock<std::mutex> lock = fairLock(*shard);
        ShardStats ss;
        ss.members = shard->member_count;
        ss.sessions = shard->sessions.size();
        ss.pending_requests = shard->pending_requests;
        ss.reservoir_bits = shard->reservoir.size();
        ss.reservoir_capacity = shard->capacity_bits;
        ss.reservoir_high_watermark = shard->high_watermark;
        ss.harvested_bits = shard->harvested_bits;
        ss.distributed_bits = shard->distributed_bits;
        ss.steals = shard->steals;
        ss.stolen_bits = shard->stolen_bits;

        out.open_sessions += ss.sessions;
        out.pending_requests += ss.pending_requests;
        out.reservoir_bits += ss.reservoir_bits;
        out.reservoir_capacity += ss.reservoir_capacity;
        out.reservoir_high_watermark += ss.reservoir_high_watermark;
        out.harvested_bits += ss.harvested_bits;
        out.distributed_bits += ss.distributed_bits;
        out.delivered_bits += shard->delivered_bits;
        out.producer_waits += shard->producer_waits;
        out.chunk_grows += shard->chunk_grows;
        out.chunk_shrinks += shard->chunk_shrinks;
        out.steals += ss.steals;
        out.stolen_bits += ss.stolen_bits;
        out.shards.push_back(std::move(ss));
    }
    return out;
}

void
Service::close()
{
    closing_.store(true, std::memory_order_release);
    for (const auto &shard : shards_) {
        const std::unique_lock<std::mutex> lock = fairLock(*shard);
        shard->work_cv.notify_all();
        shard->space_cv.notify_all();
    }
    for (auto &member : members_)
        if (member->worker.joinable())
            member->worker.join();
    for (const auto &shard : shards_)
        if (shard->dispatcher.joinable())
            shard->dispatcher.join();
    for (auto &member : members_) {
        try {
            member->source->stop();
        } catch (...) {
            // Producer errors belong to the session being torn down.
        }
    }
}

} // namespace drange::trng
