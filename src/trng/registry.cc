#include "trng/registry.hh"

#include <map>
#include <stdexcept>
#include <utility>

#include "sim/fault.hh"

namespace drange::fleet::detail {
// Defined in fleet/fleet_source.cc; same link-anchor trick as
// linkBuiltinSources() below for the "fleet" registration.
void linkFleetSource();
} // namespace drange::fleet::detail

namespace drange::trng {

namespace detail {
// Defined in sources.cc. Calling it from the registry's own
// implementation file forces the built-in sources' object file (and
// with it their static self-registrations) into the link even from a
// static library, where unreferenced objects are otherwise dropped.
void linkBuiltinSources();
} // namespace detail

namespace {

struct Entry
{
    std::string description;
    Registry::Factory factory;
};

std::map<std::string, Entry> &
entries()
{
    static std::map<std::string, Entry> map;
    return map;
}

void
ensureBuiltins()
{
    detail::linkBuiltinSources();
    fleet::detail::linkFleetSource();
}

std::string
knownNames()
{
    // Built on the public names() enumeration so the error message can
    // never drift from what callers iterating Registry::names() see.
    std::string known;
    for (const std::string &name : Registry::names()) {
        if (!known.empty())
            known += ", ";
        known += "\"" + name + "\"";
    }
    return known;
}

} // anonymous namespace

bool
Registry::add(const std::string &name, const std::string &description,
              Factory factory)
{
    if (!factory)
        throw std::invalid_argument("Registry: null factory for \"" +
                                    name + "\"");
    return entries()
        .emplace(name, Entry{description, std::move(factory)})
        .second;
}

std::unique_ptr<EntropySource>
Registry::make(const std::string &name, const Params &params)
{
    ensureBuiltins();
    const auto it = entries().find(name);
    if (it == entries().end())
        throw std::invalid_argument(
            "Registry: unknown entropy source \"" + name +
            "\" (registered: " + knownNames() + ")");
    // A `faults.*` section wraps any source in the deterministic fault
    // injector. Peeling it here (section() marks the prefixed keys
    // consumed) keeps every factory's rejectUnknown() oblivious, so
    // fault schedules attach to all sources without per-source code.
    const Params faults = params.section("faults");
    const bool faulted = !faults.keys().empty();
    sim::FaultPlan plan;
    if (faulted)
        plan = sim::FaultPlan::fromParams(faults);
    std::unique_ptr<EntropySource> source = it->second.factory(params);
    if (faulted)
        source = std::make_unique<sim::FaultInjector>(std::move(source),
                                                      std::move(plan));
    return source;
}

std::vector<std::string>
Registry::names()
{
    ensureBuiltins();
    std::vector<std::string> out;
    for (const auto &[name, entry] : entries())
        out.push_back(name);
    return out;
}

std::string
Registry::description(const std::string &name)
{
    ensureBuiltins();
    const auto it = entries().find(name);
    if (it == entries().end())
        throw std::invalid_argument(
            "Registry: unknown entropy source \"" + name +
            "\" (registered: " + knownNames() + ")");
    return it->second.description;
}

bool
Registry::contains(const std::string &name)
{
    ensureBuiltins();
    return entries().count(name) != 0;
}

} // namespace drange::trng
