/**
 * @file
 * The unified TRNG interface.
 *
 * The repo grows one entropy mechanism per paper section -- D-RaNGe
 * itself (single- and multi-channel, batch and streaming) plus the
 * three prior-work baselines Table 2 compares against -- and each
 * historically exposed its own config/stats/generate() shape.
 * EntropySource gives them one: a bounded generate(), an optional
 * continuous streaming session, and a uniform SourceStats view
 * (throughput / latency / energy / entropy), so benches, examples, and
 * services select a backend by registry name (see trng::Registry)
 * instead of hand-rolling per-class plumbing.
 */

#ifndef DRANGE_TRNG_ENTROPY_SOURCE_HH
#define DRANGE_TRNG_ENTROPY_SOURCE_HH

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "trng/conditioning.hh"
#include "util/bitstream.hh"

namespace drange::trng {

/** Static description of a source. */
struct SourceInfo
{
    std::string name;        //!< Registry key ("drange", ...).
    std::string description; //!< One-line human description.
    bool streaming = true;   //!< Supports startContinuous().
};

/**
 * Uniform measurements of a source's most recent activity (the last
 * bounded generate(), or the session so far / just ended when
 * streaming). Fields a mechanism cannot measure stay at their
 * "unknown" defaults (0, or NaN for energy).
 */
struct SourceStats
{
    std::uint64_t bits = 0;      //!< Bits delivered to the caller.
    double sim_ns = 0.0;         //!< Simulated time spent harvesting.
    double host_ms = 0.0;        //!< Host wall clock, when measured.
    double latency64_ns = 0.0;   //!< Sim time to the first 64 bits.
    double shannon_entropy = 0.0; //!< Of the delivered stream (b/bit).
    double min_entropy = 0.0;     //!< 3-bit-symbol min-entropy (b/bit).

    /** Energy per delivered bit in nJ; NaN when the mechanism has no
     * energy model. */
    double energy_nj_per_bit =
        std::numeric_limits<double>::quiet_NaN();

    /** Per-conditioning-stage accounting (streaming sources). */
    std::vector<StageAccounting> stages;

    /** Delivered throughput over simulated time, Mbit/s. */
    double throughputMbps() const
    {
        return sim_ns > 0.0
                   ? static_cast<double>(bits) / sim_ns * 1000.0
                   : 0.0;
    }
};

/**
 * Live pressure view of a source's internal producer->consumer hand-off
 * (the streaming pipeline's util::ChunkQueue). Sources without an
 * internal queue report all-zero stats. Consumed by trng::Service's
 * adaptive chunk sizing; read it from the thread driving nextChunk().
 */
struct BackpressureStats
{
    std::size_t queue_depth = 0;    //!< Chunks buffered right now.
    std::size_t queue_capacity = 0; //!< Queue bound (0: no queue).
    std::size_t queue_high_watermark = 0; //!< Deepest fill so far.
    std::uint64_t producer_waits = 0; //!< Harvest blocked (consumer-bound).
    std::uint64_t consumer_waits = 0; //!< Drain blocked (producer-bound).
};

/**
 * Abstract TRNG. Implementations own their simulated device(s);
 * construction happens through trng::Registry so the whole stack is
 * selectable from flat Params.
 *
 * Streaming contract: startContinuous() opens an unbounded session and
 * nextChunk() blocks for conditioned chunks until stop(). Sources
 * whose mechanism cannot stream (info().streaming == false, e.g. the
 * startup-values TRNG, which needs a power cycle per batch) throw
 * std::logic_error from startContinuous(). The base class implements
 * the session by repeated bounded generate() calls; genuinely
 * pipelined sources override all three methods.
 */
class EntropySource
{
  public:
    virtual ~EntropySource() = default;

    virtual const SourceInfo &info() const = 0;

    /** Generate at least @p num_bits bits (mechanisms round up to
     * their natural batch: harvest rounds, 256-bit hashes, ...). */
    virtual util::BitStream generate(std::size_t num_bits) = 0;

    /** Open an unbounded streaming session.
     * @throws std::logic_error if the source cannot stream or a
     *         session is already open. */
    virtual void startContinuous();

    /** Next chunk of the open session; nullopt once stopped. */
    virtual std::optional<util::BitStream> nextChunk();

    /** Close the streaming session (idempotent). */
    virtual void stop();

    /** Measurements of the most recent generate() or session. */
    virtual SourceStats stats() const = 0;

    /**
     * Streaming-session chunk size in bits. Adjustable mid-session
     * (producers pick the new size up at their next chunk boundary):
     * this is the knob trng::Service's adaptive chunk sizing turns.
     */
    virtual std::size_t chunkBits() const
    {
        return continuous_chunk_bits_;
    }
    virtual void setChunkBits(std::size_t bits)
    {
        setContinuousChunkBits(bits);
    }

    /**
     * Live health verdict of the open session: false once a
     * SP 800-90B health stage in the source's conditioning pipeline
     * has latched an alarm. Sources without health monitoring always
     * report true. Call from the thread driving nextChunk() -- the
     * verdict reads state that thread mutates.
     */
    virtual bool healthy() const { return true; }

    /** Internal-queue backpressure of the open session (all zeros for
     * sources without an internal pipeline queue). */
    virtual BackpressureStats backpressure() const { return {}; }

    /**
     * Environment control: ambient temperature of the simulated
     * device(s) behind this source. Default no-op for mechanisms
     * without a device model. Unlike the rest of the interface this is
     * safe to call while a session is open, from any thread -- devices
     * latch the value at their next operation. sim::FaultInjector's
     * temperature events drive this.
     */
    virtual void setTemperature(double celsius) { (void)celsius; }

  protected:
    /** Chunk size served by the default generate()-backed session. */
    std::size_t continuousChunkBits() const
    {
        return continuous_chunk_bits_;
    }
    void setContinuousChunkBits(std::size_t bits)
    {
        continuous_chunk_bits_ = bits ? bits : 1;
    }

  private:
    bool continuous_ = false;
    std::size_t continuous_chunk_bits_ = 4096;
};

/** Fill the entropy fields of @p stats from a delivered stream
 * (Shannon from the ones fraction, min-entropy over 3-bit symbols,
 * both 0 for streams too short to estimate). */
void fillEntropyFields(SourceStats &stats, const util::BitStream &bits);

} // namespace drange::trng

#endif // DRANGE_TRNG_ENTROPY_SOURCE_HH
