/**
 * @file
 * Client-side handle into the multi-client entropy service
 * (trng::Service).
 *
 * Service::open(SessionConfig) hands out a Session; any number of
 * sessions read concurrently from the service's shared conditioned-bit
 * reservoir, and the service's dispatcher splits the reservoir between
 * them with deficit-round-robin fairness weighted by each session's
 * priority. read() blocks until the request is filled; readAsync()
 * queues the request and returns a future, so one session can keep
 * several requests in flight (they complete in submission order).
 *
 * A session may carry its own conditioning profile (an ordered list of
 * trng::ConditioningStage names): the dispatcher runs every bit served
 * to the session through that pipeline, so e.g. a "sha256" session and
 * a raw session can share one pool. Fairness is accounted on the
 * *input* (reservoir) side -- what the session actually cost the pool
 * -- not on the conditioned output.
 *
 * Sessions must not outlive their Service. Closing a session (or
 * letting the handle die) fails its outstanding requests and returns
 * its share of the reservoir to the other clients.
 */

#ifndef DRANGE_TRNG_SESSION_HH
#define DRANGE_TRNG_SESSION_HH

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "trng/params.hh"
#include "util/bitstream.hh"

namespace drange::trng {

class Service;

namespace detail {
struct SessionState;
} // namespace detail

/** Per-client knobs handed to Service::open(). */
struct SessionConfig
{
    /**
     * Deficit-round-robin weight, >= 1: under contention a
     * priority-3 session is served three reservoir bits for every one
     * a priority-1 session gets.
     */
    int priority = 1;

    /**
     * Per-session conditioning profile as an ordered list of
     * registered stage names (trng::makeStage: "raw", "vonneumann",
     * "sha256", "health", ...). Empty means raw reservoir bits, which
     * is the zero-copy path.
     */
    std::vector<std::string> conditioning;

    /** Parameters handed to every conditioning-stage factory. */
    Params stage_params;
};

/** Lifetime measurements of one session. */
struct SessionStats
{
    int id = 0;
    int priority = 1;
    std::uint64_t reservoir_bits = 0; //!< Input bits this session cost
                                      //!< the pool (the DRR-fair side).
    std::uint64_t delivered_bits = 0; //!< Conditioned bits returned.
    std::uint64_t reads = 0;          //!< Completed requests.
    std::uint64_t buffered_bits = 0;  //!< Conditioned, not yet read.

    /** False once this session's own conditioning pipeline (e.g. its
     * "health" stage) latched an SP 800-90B alarm; every read after
     * the alarm fails. */
    bool healthy = true;
    std::uint64_t health_failures = 0; //!< Alarms across all stages.
};

/**
 * Movable handle to one open service session. The default-constructed
 * handle is empty; every other handle comes from Service::open().
 */
class Session
{
  public:
    Session() = default;
    ~Session();

    Session(Session &&other) noexcept;
    Session &operator=(Session &&other) noexcept;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Blocking read: exactly @p num_bits conditioned bits.
     * @throws std::runtime_error if the session or service closes
     *         first, every pool member is quarantined/exhausted, or
     *         this session's own conditioning pipeline latches an
     *         SP 800-90B health alarm (the suspect bits are dropped,
     *         and every later read on this session fails too).
     */
    util::BitStream read(std::size_t num_bits);

    /**
     * Queue a read and return immediately; the future resolves to
     * exactly @p num_bits bits (or the error above). Requests of one
     * session complete in submission order.
     */
    std::future<util::BitStream> readAsync(std::size_t num_bits);

    SessionStats stats() const;

    /** True while the handle is attached to an open session. */
    bool isOpen() const;

    /** Detach from the service: outstanding requests fail, buffered
     * bits are dropped. Idempotent; the destructor calls it. */
    void close();

  private:
    friend class Service;
    Session(Service *service,
            std::shared_ptr<detail::SessionState> state);

    Service *service_ = nullptr;
    std::shared_ptr<detail::SessionState> state_;
};

} // namespace drange::trng

#endif // DRANGE_TRNG_SESSION_HH
