/**
 * @file
 * The built-in trng::EntropySource backends: adapters wrapping the six
 * legacy TRNG classes (D-RaNGe single/multi-channel/streaming and the
 * three prior-work baselines) behind the unified interface, each
 * self-registered with trng::Registry under a flat name.
 *
 * Every adapter owns its simulated device(s) and builds them from the
 * shared Params keys
 *
 *   manufacturer (A/B/C), seed, noise_seed, rows_per_bank,
 *   temperature_c, scalar_read_path (force the reference scalar
 *   read path instead of the word-parallel threshold tables)
 *
 * plus per-source keys documented at each factory. Misspelled keys
 * throw (Params::rejectUnknown). Adapters are thin: generation and
 * statistics come from the legacy classes, so output through this
 * path is bit-identical to the legacy API for the same configuration
 * (regression-tested in tests/test_trng_registry.cc).
 */

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "baselines/cmdsched_trng.hh"
#include "baselines/retention_trng.hh"
#include "baselines/startup_trng.hh"
#include "controller/memory_controller.hh"
#include "controller/plugins.hh"
#include "core/multichannel.hh"
#include "core/streaming.hh"
#include "dram/device.hh"
#include "power/power_model.hh"
#include "sim/harvest_plugin.hh"
#include "sim/workload.hh"
#include "trng/registry.hh"
#include "util/entropy.hh"

namespace drange::trng {

namespace detail {
void
linkBuiltinSources()
{
    // Link anchor only: referencing this function from registry.cc
    // pulls this object file -- and the self-registrations below --
    // out of the static library.
}
} // namespace detail

namespace {

// ------------------------------------------------- shared Params keys

/** getInt with a lower bound, so "chunk_bits = -1" fails loudly
 * instead of wrapping into a huge unsigned value. */
std::int64_t
boundedInt(const Params &params, const std::string &key,
           std::int64_t fallback, std::int64_t min)
{
    const std::int64_t value = params.getInt(key, fallback);
    if (value < min)
        throw std::invalid_argument(
            "trng: parameter \"" + key + "\" must be >= " +
            std::to_string(min) + " (got " + std::to_string(value) +
            ")");
    return value;
}

dram::DeviceConfig
deviceConfig(const Params &params)
{
    const std::string m = params.getString("manufacturer", "A");
    dram::Manufacturer manufacturer;
    if (m == "A")
        manufacturer = dram::Manufacturer::A;
    else if (m == "B")
        manufacturer = dram::Manufacturer::B;
    else if (m == "C")
        manufacturer = dram::Manufacturer::C;
    else
        throw std::invalid_argument(
            "trng: manufacturer must be A, B, or C (got \"" + m +
            "\")");

    auto cfg = dram::DeviceConfig::make(
        manufacturer,
        static_cast<std::uint64_t>(boundedInt(params, "seed", 1, 0)),
        static_cast<std::uint64_t>(
            boundedInt(params, "noise_seed", 0, 0)));
    if (const auto rows = boundedInt(params, "rows_per_bank", 0, 0);
        rows > 0)
        cfg.geometry.rows_per_bank = static_cast<int>(rows);
    cfg.conditions.temperature_c =
        params.getDouble("temperature_c", cfg.conditions.temperature_c);
    // Debug/validation escape hatch: force the scalar double-precision
    // read path instead of the word-parallel threshold tables.
    cfg.scalar_read_path =
        params.getBool("scalar_read_path", cfg.scalar_read_path);
    return cfg;
}

core::DRangeConfig
drangeConfig(const Params &params)
{
    core::DRangeConfig cfg;
    cfg.banks =
        static_cast<int>(boundedInt(params, "banks", cfg.banks, 1));
    cfg.reduced_trcd_ns =
        params.getDouble("reduced_trcd_ns", cfg.reduced_trcd_ns);
    cfg.identify.trcd_ns = cfg.reduced_trcd_ns;
    cfg.profile_rows = static_cast<int>(
        boundedInt(params, "profile_rows", cfg.profile_rows, 1));
    cfg.profile_words = static_cast<int>(
        boundedInt(params, "profile_words", cfg.profile_words, 1));
    cfg.profile_row_offset = static_cast<int>(boundedInt(
        params, "profile_row_offset", cfg.profile_row_offset, 0));
    cfg.identify.screen_iterations =
        static_cast<int>(boundedInt(params, "screen_iterations",
                                    cfg.identify.screen_iterations, 1));
    cfg.identify.samples = static_cast<int>(
        boundedInt(params, "samples", cfg.identify.samples, 1));
    cfg.identify.symbol_tolerance = params.getDouble(
        "symbol_tolerance", cfg.identify.symbol_tolerance);
    return cfg;
}

// ------------------------------------------------------------ drange

/** Single-channel D-RaNGe behind the interface. */
class DRangeSource final : public EntropySource
{
  public:
    explicit DRangeSource(const Params &params)
        : device_(std::make_unique<dram::DramDevice>(
              deviceConfig(params))),
          engine_(std::make_unique<core::DRangeTrng>(
              *device_, drangeConfig(params)))
    {
        setContinuousChunkBits(static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 4096, 1)));
        params.rejectUnknown("trng source \"drange\"");
        info_ = {"drange",
                 "D-RaNGe: DRAM activation-failure TRNG (Kim+ HPCA'19)",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        if (!engine_->initialized())
            engine_->initialize();
        engine_->scheduler().clearTrace();
        const util::BitStream bits = engine_->generate(num_bits);
        const auto &st = engine_->lastStats();

        stats_ = SourceStats{};
        stats_.bits = bits.size();
        stats_.sim_ns = st.durationNs();
        stats_.latency64_ns = st.first_word_ns;
        fillEntropyFields(stats_, bits);

        // The paper's energy methodology (Section 7.3): trace energy
        // minus the idle baseline over the same interval, per bit.
        const power::PowerModel pm(power::PowerSpec::lpddr4(),
                                   device_->config().timing);
        const auto energy = pm.traceEnergy(
            engine_->scheduler().trace(), st.durationNs(),
            engine_->scheduler().activeTime());
        if (st.bits > 0)
            stats_.energy_nj_per_bit =
                (energy.total_nj() - pm.idleEnergyNj(st.durationNs())) /
                static_cast<double>(st.bits);
        return bits;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        device_->setTemperature(celsius);
    }

  private:
    std::unique_ptr<dram::DramDevice> device_;
    std::unique_ptr<core::DRangeTrng> engine_;
    SourceInfo info_;
    SourceStats stats_;
};

// ------------------------------------------------------ multichannel

/** Thread-parallel multi-channel D-RaNGe behind the interface. */
class MultiChannelSource final : public EntropySource
{
  public:
    explicit MultiChannelSource(const Params &params)
    {
        const int channels =
            static_cast<int>(boundedInt(params, "channels", 2, 1));
        const bool serial = params.getBool("serial", false);
        trng_ = std::make_unique<core::MultiChannelTrng>(
            deviceConfig(params), channels, drangeConfig(params),
            serial ? core::HarvestMode::Serial
                   : core::HarvestMode::Parallel);
        setContinuousChunkBits(static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 4096, 1)));
        params.rejectUnknown("trng source \"multichannel\"");
        info_ = {"multichannel",
                 "D-RaNGe across independent DRAM channels, "
                 "thread-parallel harvest",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        if (!initialized_) {
            trng_->initialize();
            initialized_ = true;
        }
        const util::BitStream bits = trng_->generate(num_bits);
        stats_ = SourceStats{};
        stats_.bits = bits.size();
        stats_.sim_ns = trng_->lastDurationNs();
        stats_.host_ms = trng_->hostWallClockMs();
        fillEntropyFields(stats_, bits);
        return bits;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        for (int c = 0; c < trng_->channels(); ++c)
            trng_->channel(c).device().setTemperature(celsius);
    }

  private:
    std::unique_ptr<core::MultiChannelTrng> trng_;
    bool initialized_ = false;
    SourceInfo info_;
    SourceStats stats_;
};

// --------------------------------------------------------- streaming

/** The overlapped harvest/conditioning pipeline behind the interface:
 * a StreamingTrng over a multi-channel engine, with the conditioning
 * pipeline (and its SP 800-90B health stage) chosen via Params. */
class StreamingSource final : public EntropySource
{
  public:
    explicit StreamingSource(const Params &params)
    {
        const int channels =
            static_cast<int>(boundedInt(params, "channels", 2, 1));
        trng_ = std::make_unique<core::MultiChannelTrng>(
            deviceConfig(params), channels, drangeConfig(params));

        stream_config_.chunk_bits = static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 8192, 1));
        stream_config_.queue_capacity = static_cast<std::size_t>(
            boundedInt(params, "queue_capacity", 8, 1));
        stream_config_.serial_producer =
            params.getBool("serial", false);
        stream_config_.validate_threads = static_cast<int>(
            boundedInt(params, "validate_threads", 0, 0));
        stream_config_.validate_alpha = params.getDouble(
            "validate_alpha", stream_config_.validate_alpha);
        stream_config_.conditioning_workers = static_cast<int>(
            boundedInt(params, "conditioning_workers", 0, 0));
        stream_config_.conditioning = params.getList("conditioning");
        stream_config_.stage_params = params;

        // Validate stage names (and their params) eagerly so a typo
        // fails at make() time, not at the first generate().
        trng::makePipeline(stream_config_.conditioning, params);
        params.rejectUnknown("trng source \"streaming\"");
        info_ = {"streaming",
                 "D-RaNGe streaming pipeline: overlapped harvest, "
                 "pluggable conditioning, online validation",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        delivered_bits_ = 0;
        delivered_ones_ = 0;
        const util::BitStream bits = ensureStream().generate(num_bits);
        captureStats();
        fillEntropyFields(stats_, bits);
        return bits;
    }

    void startContinuous() override
    {
        // Per-session counters: stop() reports the entropy of the
        // session that just ended, not of everything ever delivered.
        delivered_bits_ = 0;
        delivered_ones_ = 0;
        ensureStream().startContinuous();
    }

    std::optional<util::BitStream> nextChunk() override
    {
        if (!stream_)
            return std::nullopt;
        auto chunk = stream_->nextChunk();
        if (chunk) {
            delivered_bits_ += chunk->size();
            delivered_ones_ += chunk->popcount();
        }
        return chunk;
    }

    void stop() override
    {
        if (!stream_ || !stream_->running())
            return; // Keep the stats of the last completed activity.
        stream_->stop();
        captureStats();
        if (delivered_bits_ > 0)
            stats_.shannon_entropy = util::binaryShannonEntropy(
                static_cast<double>(delivered_ones_) /
                static_cast<double>(delivered_bits_));
    }

    SourceStats stats() const override { return stats_; }

    std::size_t chunkBits() const override
    {
        return stream_ ? stream_->chunkBits()
                       : stream_config_.chunk_bits;
    }

    void setChunkBits(std::size_t bits) override
    {
        stream_config_.chunk_bits = bits ? bits : 1;
        if (stream_)
            stream_->setChunkBits(bits);
    }

    bool healthy() const override
    {
        // Stage state is mutated by the thread running nextChunk();
        // per the interface contract that is also the caller here.
        return !stream_ || stream_->conditioning().healthy();
    }

    BackpressureStats backpressure() const override
    {
        BackpressureStats bp;
        bp.queue_capacity = stream_config_.queue_capacity;
        if (stream_) {
            bp.queue_depth = stream_->queueDepth();
            bp.queue_capacity = stream_->queueCapacity();
            bp.queue_high_watermark = stream_->queueHighWatermark();
            bp.producer_waits = stream_->queuePushWaits();
            bp.consumer_waits = stream_->queuePopWaits();
        }
        return bp;
    }

    /** The underlying pipeline, for callers that need the full
     * streaming API (producer stats, custom stages). */
    core::StreamingTrng &stream() { return ensureStream(); }

    void setTemperature(double celsius) override
    {
        // Device temperature is atomic; producer threads mid-session
        // pick the new value up at their next DRAM operation.
        for (int c = 0; c < trng_->channels(); ++c)
            trng_->channel(c).device().setTemperature(celsius);
    }

  private:
    core::StreamingTrng &ensureStream()
    {
        if (!stream_) {
            trng_->initialize();
            stream_ = std::make_unique<core::StreamingTrng>(
                *trng_, stream_config_);
        }
        return *stream_;
    }

    void captureStats()
    {
        const core::StreamingStats &st = stream_->stats();
        stats_ = SourceStats{};
        stats_.bits = st.out_bits;
        stats_.host_ms = st.host_ms;
        stats_.stages = st.stages;
        double sim_ns = 0.0;
        double first = 0.0;
        for (int ch = 0; ch < stream_->engines(); ++ch) {
            const core::ProducerStats &ps = stream_->producerStats(ch);
            sim_ns = std::max(sim_ns, ps.durationNs());
            if (ps.first_word_ns > 0.0)
                first = first == 0.0
                            ? ps.first_word_ns
                            : std::min(first, ps.first_word_ns);
        }
        stats_.sim_ns = sim_ns;
        stats_.latency64_ns = first;
    }

    std::unique_ptr<core::MultiChannelTrng> trng_;
    std::unique_ptr<core::StreamingTrng> stream_;
    core::StreamingConfig stream_config_;
    std::uint64_t delivered_bits_ = 0;
    std::uint64_t delivered_ones_ = 0;
    SourceInfo info_;
    SourceStats stats_;
};

// ----------------------------------------------------- opportunistic

/** D-RaNGe harvesting only the idle DRAM slots a co-simulated
 * application workload leaves behind (paper Section 7.3), through the
 * controller plugin chain: a ShaperPlugin guards the idle windows, an
 * OpportunisticHarvestPlugin spends them on width-scaled sampling
 * rounds, and this adapter drives the MemoryController event loop and
 * drains the harvested bits. Throughput through this source is bits
 * per *co-simulated wall time* -- entropy that cost the application
 * only the reported latency delta. */
class OpportunisticSource final : public EntropySource
{
  public:
    explicit OpportunisticSource(const Params &params)
        : device_(std::make_unique<dram::DramDevice>(
              deviceConfig(params))),
          engine_(std::make_unique<core::DRangeTrng>(
              *device_, drangeConfig(params)))
    {
        // Workload: a spec2006() name, or "custom" tuned by hand; the
        // intensity/locality knobs override either.
        workload_.name = params.getString("workload", "custom");
        if (workload_.name != "custom") {
            bool found = false;
            for (const auto &w : sim::Workload::spec2006()) {
                if (w.name == workload_.name) {
                    workload_ = w;
                    found = true;
                    break;
                }
            }
            if (!found)
                throw std::invalid_argument(
                    "trng source \"opportunistic\": unknown workload "
                    "\"" + workload_.name +
                    "\" (a sim::Workload::spec2006() name or "
                    "\"custom\")");
        }
        workload_.intensity =
            params.getDouble("intensity", workload_.intensity);
        workload_.row_locality =
            params.getDouble("row_locality", workload_.row_locality);
        workload_.write_fraction = params.getDouble(
            "write_fraction", workload_.write_fraction);
        workload_.footprint_rows = static_cast<int>(boundedInt(
            params, "footprint_rows", workload_.footprint_rows, 1));
        if (workload_.intensity <= 0.0 || workload_.intensity > 1.0)
            throw std::invalid_argument(
                "trng source \"opportunistic\": intensity must be in "
                "(0, 1]");

        slice_ns_ = params.getDouble("slice_ns", slice_ns_);
        peak_request_ns_ =
            params.getDouble("peak_request_ns", peak_request_ns_);
        app_row_offset_ = static_cast<int>(
            boundedInt(params, "app_row_offset", app_row_offset_, 0));
        workload_seed_ = static_cast<std::uint64_t>(
            boundedInt(params, "workload_seed", 97, 0));

        auto &sched = engine_->scheduler();
        // Continuous co-simulation: bound the command trace so a
        // long-lived trngd pool member cannot grow it without limit.
        sched.setTraceCapacity(static_cast<std::size_t>(
            boundedInt(params, "trace_capacity", 65536, 0)));

        Params shaper_params;
        shaper_params
            .set("min_window_ns",
                 params.getDouble("min_window_ns", 0.0))
            .set("guard_ns", params.getDouble("guard_ns", 0.0))
            .set("max_duty", params.getDouble("max_duty", 1.0));
        sched.attach(
            std::make_unique<ctrl::ShaperPlugin>(shaper_params));

        Params harvest_params;
        harvest_params
            .set("admit_margin",
                 params.getDouble("admit_margin", 0.95))
            .set("min_banks", params.getInt("min_banks", 1))
            .set("prime_window_ns",
                 params.getDouble("prime_window_ns", 100.0));
        auto harvester =
            std::make_unique<sim::OpportunisticHarvestPlugin>(
                harvest_params);
        harvester->bind(*engine_);
        harvester_ = harvester.get();
        sched.attach(std::move(harvester));

        mc_ = std::make_unique<ctrl::MemoryController>(sched);
        generator_ = std::make_unique<sim::WorkloadGenerator>(
            device_->config().geometry, workload_seed_);

        setContinuousChunkBits(static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 4096, 1)));
        params.rejectUnknown("trng source \"opportunistic\"");
        info_ = {"opportunistic",
                 "D-RaNGe scavenging idle DRAM slots under live "
                 "workload traffic (Section 7.3)",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        if (!engine_->initialized()) {
            engine_->initialize();
            engine_->enterSamplingMode();
            // Application requests run at default timing; the
            // harvester flips the reduced tRCD around each round.
            engine_->setReducedTiming(false);
        }

        auto &sched = engine_->scheduler();
        const auto &geom = device_->config().geometry;
        const double gen_start = sched.now();
        double first64_ns = 0.0;

        util::BitStream out = harvester_->drain(); // Leftover rounds.
        int dry_slices = 0;
        while (out.size() < num_bits) {
            const double start = sched.now();
            auto reqs = generator_->generate(workload_, start,
                                             slice_ns_,
                                             peak_request_ns_);
            for (auto &r : reqs) {
                r.row = (r.row + app_row_offset_) % geom.rows_per_bank;
                mc_->enqueue(r);
            }
            mc_->run(start + slice_ns_);
            mc_->drain();

            const util::BitStream chunk = harvester_->drain();
            if (first64_ns == 0.0 && out.size() + chunk.size() >= 64)
                first64_ns = sched.now() - gen_start;
            out.append(chunk);

            // A workload can be so intense that no window ever admits
            // even the narrowest round; fail loudly instead of
            // co-simulating forever.
            dry_slices = chunk.empty() ? dry_slices + 1 : 0;
            if (dry_slices >= 1000)
                throw std::runtime_error(
                    "trng source \"opportunistic\": no harvestable "
                    "idle windows in 1000 consecutive slices "
                    "(workload too intense?)");
        }

        stats_ = SourceStats{};
        stats_.bits = out.size();
        stats_.sim_ns = sched.now() - gen_start;
        stats_.latency64_ns = first64_ns;
        fillEntropyFields(stats_, out);
        return out;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        device_->setTemperature(celsius);
    }

    /** Application-side service statistics of the co-simulation. */
    const ctrl::ControllerStats &appStats() const
    {
        return mc_->stats();
    }

    /** The harvester plugin (round/window counters). */
    const sim::OpportunisticHarvestPlugin &harvester() const
    {
        return *harvester_;
    }

  private:
    std::unique_ptr<dram::DramDevice> device_;
    std::unique_ptr<core::DRangeTrng> engine_;
    sim::OpportunisticHarvestPlugin *harvester_ = nullptr;
    std::unique_ptr<ctrl::MemoryController> mc_;
    std::unique_ptr<sim::WorkloadGenerator> generator_;
    sim::Workload workload_;
    double slice_ns_ = 100000.0;
    double peak_request_ns_ = 100.0;
    int app_row_offset_ = 4096;
    std::uint64_t workload_seed_ = 97;
    SourceInfo info_;
    SourceStats stats_;
};

// ---------------------------------------------------------- cmdsched

/** Command-schedule jitter baseline (Pyo+) behind the interface. */
class CmdSchedSource final : public EntropySource
{
  public:
    explicit CmdSchedSource(const Params &params)
        : device_(std::make_unique<dram::DramDevice>(
              deviceConfig(params)))
    {
        baselines::CmdSchedTrngConfig cfg;
        cfg.banks = static_cast<int>(
            boundedInt(params, "banks", cfg.banks, 1));
        cfg.accesses_per_bit = static_cast<int>(boundedInt(
            params, "accesses_per_bit", cfg.accesses_per_bit, 1));
        cfg.rows_touched = static_cast<int>(
            boundedInt(params, "rows_touched", cfg.rows_touched, 1));
        trng_ =
            std::make_unique<baselines::CmdSchedTrng>(*device_, cfg);
        setContinuousChunkBits(static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 4096, 1)));
        params.rejectUnknown("trng source \"cmdsched\"");
        info_ = {"cmdsched",
                 "Command-schedule jitter TRNG (Pyo+; deterministic, "
                 "fails NIST)",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        const util::BitStream bits = trng_->generate(num_bits);
        const auto &st = trng_->lastStats();
        stats_ = SourceStats{};
        stats_.bits = bits.size();
        stats_.sim_ns = st.duration_ns;
        if (st.bits > 0)
            stats_.latency64_ns =
                st.duration_ns / static_cast<double>(st.bits) * 64.0;
        fillEntropyFields(stats_, bits);
        return bits;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        device_->setTemperature(celsius);
    }

  private:
    std::unique_ptr<dram::DramDevice> device_;
    std::unique_ptr<baselines::CmdSchedTrng> trng_;
    SourceInfo info_;
    SourceStats stats_;
};

// --------------------------------------------------------- retention

/** Data-retention baseline (Keller+/Sutar+) behind the interface. */
class RetentionSource final : public EntropySource
{
  public:
    explicit RetentionSource(const Params &params)
        : device_(std::make_unique<dram::DramDevice>(
              deviceConfig(params)))
    {
        cfg_.wait_seconds =
            params.getDouble("wait_seconds", cfg_.wait_seconds);
        cfg_.bank =
            static_cast<int>(boundedInt(params, "bank", cfg_.bank, 0));
        cfg_.row_begin = static_cast<int>(
            boundedInt(params, "row_begin", cfg_.row_begin, 0));
        cfg_.rows =
            static_cast<int>(boundedInt(params, "rows", cfg_.rows, 1));
        cfg_.words = static_cast<int>(
            boundedInt(params, "words", cfg_.words, 0));
        trng_ =
            std::make_unique<baselines::RetentionTrng>(*device_, cfg_);
        setContinuousChunkBits(static_cast<std::size_t>(
            boundedInt(params, "chunk_bits", 256, 1)));
        params.rejectUnknown("trng source \"retention\"");
        info_ = {"retention",
                 "Data-retention-failure TRNG (Keller+/Sutar+; one "
                 "256-bit hash per wait interval)",
                 true};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        const util::BitStream bits = trng_->generate(num_bits);
        const auto &st = trng_->lastStats();
        stats_ = SourceStats{};
        stats_.bits = bits.size();
        stats_.sim_ns = st.sim_seconds * 1e9;
        stats_.latency64_ns = cfg_.wait_seconds * 1e9;
        fillEntropyFields(stats_, bits);
        // Energy: the idle background power burnt across the
        // refresh-disabled wait, amortized over one 256-bit hash.
        const power::PowerModel pm(power::PowerSpec::lpddr4(),
                                   device_->config().timing);
        stats_.energy_nj_per_bit =
            pm.idleEnergyNj(cfg_.wait_seconds * 1e9) / 256.0;
        return bits;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        device_->setTemperature(celsius);
    }

  private:
    std::unique_ptr<dram::DramDevice> device_;
    baselines::RetentionTrngConfig cfg_;
    std::unique_ptr<baselines::RetentionTrng> trng_;
    SourceInfo info_;
    SourceStats stats_;
};

// ----------------------------------------------------------- startup

/** Startup-values baseline (Tehranipoor+) behind the interface. The
 * only non-streaming source: every batch costs a power cycle. */
class StartupSource final : public EntropySource
{
  public:
    explicit StartupSource(const Params &params)
        : device_(std::make_unique<dram::DramDevice>(
              deviceConfig(params)))
    {
        cfg_.bank =
            static_cast<int>(boundedInt(params, "bank", cfg_.bank, 0));
        cfg_.row_begin = static_cast<int>(
            boundedInt(params, "row_begin", cfg_.row_begin, 0));
        cfg_.rows =
            static_cast<int>(boundedInt(params, "rows", cfg_.rows, 1));
        cfg_.enroll_cycles = static_cast<int>(boundedInt(
            params, "enroll_cycles", cfg_.enroll_cycles, 1));
        cfg_.power_cycle_seconds = params.getDouble(
            "power_cycle_seconds", cfg_.power_cycle_seconds);
        trng_ =
            std::make_unique<baselines::StartupTrng>(*device_, cfg_);
        params.rejectUnknown("trng source \"startup\"");
        info_ = {"startup",
                 "Startup-values TRNG (Tehranipoor+; reboot per batch, "
                 "cannot stream)",
                 false};
    }

    const SourceInfo &info() const override { return info_; }

    util::BitStream generate(std::size_t num_bits) override
    {
        if (trng_->enrolledCells() == 0)
            trng_->enroll();
        const util::BitStream bits = trng_->generate(num_bits);
        const auto &st = trng_->lastStats();
        stats_ = SourceStats{};
        stats_.bits = bits.size();
        stats_.sim_ns = st.sim_seconds * 1e9;
        stats_.latency64_ns = cfg_.power_cycle_seconds * 1e9;
        fillEntropyFields(stats_, bits);
        return bits;
    }

    SourceStats stats() const override { return stats_; }

    void setTemperature(double celsius) override
    {
        device_->setTemperature(celsius);
    }

    std::size_t enrolledCells() const { return trng_->enrolledCells(); }

  private:
    std::unique_ptr<dram::DramDevice> device_;
    baselines::StartupTrngConfig cfg_;
    std::unique_ptr<baselines::StartupTrng> trng_;
    SourceInfo info_;
    SourceStats stats_;
};

// ---------------------------------------------------- registrations

template <typename Source>
std::unique_ptr<EntropySource>
makeSource(const Params &params)
{
    return std::make_unique<Source>(params);
}

} // anonymous namespace

DRANGE_TRNG_REGISTER(drange, "drange",
                     "D-RaNGe activation-failure TRNG (the paper's "
                     "mechanism, single channel)",
                     makeSource<DRangeSource>);
DRANGE_TRNG_REGISTER(multichannel, "multichannel",
                     "D-RaNGe across independent DRAM channels, "
                     "thread-parallel harvest",
                     makeSource<MultiChannelSource>);
DRANGE_TRNG_REGISTER(streaming, "streaming",
                     "D-RaNGe streaming pipeline with pluggable "
                     "conditioning stages and online validation",
                     makeSource<StreamingSource>);
DRANGE_TRNG_REGISTER(opportunistic, "opportunistic",
                     "D-RaNGe scavenging idle DRAM slots under live "
                     "workload traffic (Section 7.3)",
                     makeSource<OpportunisticSource>);
DRANGE_TRNG_REGISTER(cmdsched, "cmdsched",
                     "command-schedule jitter baseline (Pyo+)",
                     makeSource<CmdSchedSource>);
DRANGE_TRNG_REGISTER(retention, "retention",
                     "data-retention-failure baseline "
                     "(Keller+/Sutar+)",
                     makeSource<RetentionSource>);
DRANGE_TRNG_REGISTER(startup, "startup",
                     "startup-values baseline (Tehranipoor+)",
                     makeSource<StartupSource>);

} // namespace drange::trng
