/**
 * @file
 * SP 800-90B continuous health tests (Section 4.4) as a conditioning
 * stage.
 *
 * An entropy source must monitor its own output for catastrophic
 * failures while running. NIST SP 800-90B mandates two continuous
 * tests, both parameterized by the claimed per-sample min-entropy H
 * and a false-positive rate alpha (recommended 2^-20):
 *
 *  - Repetition Count Test (4.4.1): alarm when one value repeats
 *    C = 1 + ceil(-log2(alpha) / H) times in a row. Catches stuck-at
 *    failures (e.g. a DRAM RNG cell that stops failing activation).
 *  - Adaptive Proportion Test (4.4.2): over a window of W consecutive
 *    samples (W = 512 for binary sources), alarm when the window's
 *    first value reoccurs at least C_apt times among the remaining
 *    W - 1 samples, where C_apt is the smallest c with
 *    P[Binomial(W - 1, 2^-H) >= c] <= alpha. Catches large bias
 *    shifts a repetition count never sees.
 *
 * HealthTestStage feeds every bit through both tests while passing the
 * stream through unchanged; alarms are counted (and latched via
 * healthy()) rather than truncating the stream, so the pipeline's
 * entropy accounting stays complete and the caller decides the error
 * policy, as 90B leaves it to the consuming application.
 */

#ifndef DRANGE_TRNG_HEALTH_HH
#define DRANGE_TRNG_HEALTH_HH

#include <cstdint>

#include "trng/conditioning.hh"
#include "trng/params.hh"

namespace drange::trng {

/** Parameters shared by both SP 800-90B continuous tests. */
struct HealthTestConfig
{
    /** Claimed min-entropy per bit, 0 < H <= 1. */
    double min_entropy = 1.0;

    /** Per-test false-positive rate; 90B recommends 2^-20. */
    double alpha = 9.5367431640625e-07;

    /** Adaptive-proportion window (90B: 512 for binary sources). */
    int window = 512;

    /**
     * Build from Params keys "health_min_entropy", "health_alpha",
     * "health_window".
     * @throws std::invalid_argument on out-of-domain values.
     */
    static HealthTestConfig fromParams(const Params &params);
};

/** Repetition-count cutoff C = 1 + ceil(-log2(alpha) / H). */
int repetitionCountCutoff(double min_entropy, double alpha);

/**
 * Adaptive-proportion cutoff: smallest c with
 * P[Binomial(window - 1, 2^-min_entropy) >= c] <= alpha (exact
 * binomial tail, evaluated in log space). May equal window, in which
 * case the configured alpha is unreachable within the window and the
 * test never fires.
 */
int adaptiveProportionCutoff(double min_entropy, double alpha,
                             int window);

/** SP 800-90B 4.4.1, streamed bit-at-a-time. */
class RepetitionCountTest
{
  public:
    explicit RepetitionCountTest(const HealthTestConfig &config);

    /** Feed one sample; returns false iff this bit raised an alarm. */
    bool feed(bool bit);

    void reset();
    std::uint64_t failures() const { return failures_; }
    int cutoff() const { return cutoff_; }

  private:
    int cutoff_;
    bool have_last_ = false;
    bool last_ = false;
    int run_length_ = 0;
    std::uint64_t failures_ = 0;
};

/** SP 800-90B 4.4.2, streamed bit-at-a-time. */
class AdaptiveProportionTest
{
  public:
    explicit AdaptiveProportionTest(const HealthTestConfig &config);

    /** Feed one sample; returns false iff this bit closed a window
     * over the cutoff. */
    bool feed(bool bit);

    void reset();
    std::uint64_t failures() const { return failures_; }
    int cutoff() const { return cutoff_; }
    int window() const { return window_; }

  private:
    int window_;
    int cutoff_;
    bool reference_ = false;
    int position_ = 0; //!< Samples consumed of the current window.
    int matches_ = 0;  //!< Occurrences of reference_ after the first.
    std::uint64_t failures_ = 0;
};

/**
 * Conditioning stage running both continuous tests over the stream
 * flowing through it (passthrough; see file comment for the alarm
 * policy). Compose it after the final conditioning step to monitor
 * delivered output, or directly after harvest to monitor the raw
 * source as 90B actually requires.
 */
class HealthTestStage final : public ConditioningStage
{
  public:
    explicit HealthTestStage(const HealthTestConfig &config = {});

    std::string name() const override { return "health"; }
    util::BitStream process(const util::BitStream &chunk) override;
    void reset() override;
    bool healthy() const override { return failures() == 0; }
    std::uint64_t failures() const override
    {
        return repetition_.failures() + proportion_.failures();
    }

    const RepetitionCountTest &repetitionCount() const
    {
        return repetition_;
    }
    const AdaptiveProportionTest &adaptiveProportion() const
    {
        return proportion_;
    }

  private:
    RepetitionCountTest repetition_;
    AdaptiveProportionTest proportion_;
};

} // namespace drange::trng

#endif // DRANGE_TRNG_HEALTH_HH
