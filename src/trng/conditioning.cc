#include "trng/conditioning.hh"

#include <map>
#include <stdexcept>
#include <utility>

#include "trng/health.hh"
#include "util/entropy.hh"
#include "util/sha256.hh"

namespace drange::trng {

namespace {

double
streamEntropy(std::uint64_t bits, std::uint64_t ones)
{
    if (bits == 0)
        return 0.0;
    return util::binaryShannonEntropy(static_cast<double>(ones) /
                                      static_cast<double>(bits));
}

} // anonymous namespace

double
StageAccounting::inEntropy() const
{
    return streamEntropy(in_bits, in_ones);
}

double
StageAccounting::outEntropy() const
{
    return streamEntropy(out_bits, out_ones);
}

ConditioningPipeline::ConditioningPipeline(
    std::vector<std::unique_ptr<ConditioningStage>> stages)
    : stages_(std::move(stages))
{
    for (const auto &stage : stages_) {
        if (!stage)
            throw std::invalid_argument(
                "ConditioningPipeline: null stage");
        accounting_.push_back(StageAccounting{stage->name()});
    }
}

void
ConditioningPipeline::addStage(std::unique_ptr<ConditioningStage> stage)
{
    if (!stage)
        throw std::invalid_argument("ConditioningPipeline: null stage");
    accounting_.push_back(StageAccounting{stage->name()});
    stages_.push_back(std::move(stage));
}

util::BitStream
ConditioningPipeline::run(std::size_t first_stage, util::BitStream bits)
{
    for (std::size_t i = first_stage; i < stages_.size(); ++i) {
        StageAccounting &acct = accounting_[i];
        acct.in_bits += bits.size();
        acct.in_ones += bits.popcount();
        bits = stages_[i]->process(bits);
        acct.out_bits += bits.size();
        acct.out_ones += bits.popcount();
        acct.health_failures = stages_[i]->failures();
    }
    return bits;
}

util::BitStream
ConditioningPipeline::process(const util::BitStream &chunk)
{
    return run(0, chunk);
}

util::BitStream
ConditioningPipeline::finish()
{
    // Flush front to back: bits a stage had buffered still have to
    // pass through every stage downstream of it.
    util::BitStream out;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        util::BitStream flushed = stages_[i]->finish();
        accounting_[i].out_bits += flushed.size();
        accounting_[i].out_ones += flushed.popcount();
        if (!flushed.empty())
            out.append(run(i + 1, std::move(flushed)));
    }
    return out;
}

void
ConditioningPipeline::reset()
{
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        stages_[i]->reset();
        accounting_[i] = StageAccounting{stages_[i]->name()};
    }
}

bool
ConditioningPipeline::healthy() const
{
    for (const auto &stage : stages_)
        if (!stage->healthy())
            return false;
    return true;
}

util::BitStream
VonNeumannStage::process(const util::BitStream &chunk)
{
    util::BitStream out;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        const bool bit = chunk.at(i);
        if (!have_half_) {
            half_ = bit;
            have_half_ = true;
        } else {
            if (half_ != bit)
                out.append(half_);
            have_half_ = false;
        }
    }
    return out;
}

util::BitStream
Sha256Stage::process(const util::BitStream &chunk)
{
    if (chunk.empty())
        return {};
    const auto digest = util::Sha256::hash(chunk.toBytesMsbFirst());
    util::BitStream out;
    for (std::uint8_t byte : digest)
        for (int b = 7; b >= 0; --b)
            out.append((byte >> b) & 1);
    return out;
}

// ------------------------------------------------------- stage factory

namespace {

using StageFactory =
    std::unique_ptr<ConditioningStage> (*)(const Params &);

std::map<std::string, StageFactory> &
stageRegistry()
{
    static std::map<std::string, StageFactory> registry;
    return registry;
}

const bool builtin_stages_registered = [] {
    registerStage("raw", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<RawStage>();
                  });
    registerStage("vonneumann", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<VonNeumannStage>();
                  });
    registerStage("sha256", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<Sha256Stage>();
                  });
    registerStage("health", [](const Params &params)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<HealthTestStage>(
                          HealthTestConfig::fromParams(params));
                  });
    return true;
}();

} // anonymous namespace

bool
registerStage(const std::string &name, StageFactory factory)
{
    return stageRegistry().emplace(name, factory).second;
}

std::unique_ptr<ConditioningStage>
makeStage(const std::string &name, const Params &params)
{
    const auto &registry = stageRegistry();
    const auto it = registry.find(name);
    if (it == registry.end()) {
        std::string known;
        for (const auto &[stage_name, factory] : registry) {
            if (!known.empty())
                known += ", ";
            known += "\"" + stage_name + "\"";
        }
        throw std::invalid_argument(
            "makeStage: unknown conditioning stage \"" + name +
            "\" (known stages: " + known + ")");
    }
    return it->second(params);
}

std::vector<std::string>
stageNames()
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : stageRegistry())
        out.push_back(name);
    return out;
}

ConditioningPipeline
makePipeline(const std::vector<std::string> &names, const Params &params)
{
    ConditioningPipeline pipeline;
    for (const auto &name : names)
        pipeline.addStage(makeStage(name, params));
    return pipeline;
}

} // namespace drange::trng
