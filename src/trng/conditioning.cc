#include "trng/conditioning.hh"

#include <bit>
#include <map>
#include <stdexcept>
#include <utility>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

#include "trng/health.hh"
#include "util/entropy.hh"
#include "util/sha256.hh"

namespace drange::trng {

namespace {

double
streamEntropy(std::uint64_t bits, std::uint64_t ones)
{
    if (bits == 0)
        return 0.0;
    return util::binaryShannonEntropy(static_cast<double>(ones) /
                                      static_cast<double>(bits));
}

} // anonymous namespace

double
StageAccounting::inEntropy() const
{
    return streamEntropy(in_bits, in_ones);
}

double
StageAccounting::outEntropy() const
{
    return streamEntropy(out_bits, out_ones);
}

ConditioningPipeline::ConditioningPipeline(
    std::vector<std::unique_ptr<ConditioningStage>> stages)
    : stages_(std::move(stages))
{
    for (const auto &stage : stages_) {
        if (!stage)
            throw std::invalid_argument(
                "ConditioningPipeline: null stage");
        accounting_.push_back(StageAccounting{stage->name()});
    }
}

void
ConditioningPipeline::addStage(std::unique_ptr<ConditioningStage> stage)
{
    if (!stage)
        throw std::invalid_argument("ConditioningPipeline: null stage");
    accounting_.push_back(StageAccounting{stage->name()});
    stages_.push_back(std::move(stage));
}

util::BitStream
ConditioningPipeline::run(std::size_t first_stage, util::BitStream bits)
{
    for (std::size_t i = first_stage; i < stages_.size(); ++i) {
        StageAccounting &acct = accounting_[i];
        acct.in_bits += bits.size();
        acct.in_ones += bits.popcount();
        bits = stages_[i]->processOwned(std::move(bits));
        acct.out_bits += bits.size();
        acct.out_ones += bits.popcount();
        acct.health_failures = stages_[i]->failures();
    }
    return bits;
}

util::BitStream
ConditioningPipeline::process(const util::BitStream &chunk)
{
    return run(0, chunk);
}

util::BitStream
ConditioningPipeline::process(util::BitStream &&chunk)
{
    return run(0, std::move(chunk));
}

util::BitStream
ConditioningPipeline::finish()
{
    // Flush front to back: bits a stage had buffered still have to
    // pass through every stage downstream of it.
    util::BitStream out;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        util::BitStream flushed = stages_[i]->finish();
        accounting_[i].out_bits += flushed.size();
        accounting_[i].out_ones += flushed.popcount();
        if (!flushed.empty())
            out.append(run(i + 1, std::move(flushed)));
    }
    return out;
}

void
ConditioningPipeline::reset()
{
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        stages_[i]->reset();
        accounting_[i] = StageAccounting{stages_[i]->name()};
    }
}

bool
ConditioningPipeline::healthy() const
{
    for (const auto &stage : stages_)
        if (!stage->healthy())
            return false;
    return true;
}

// ------------------------------------------------ ParallelConditioner

ParallelConditioner::ParallelConditioner(ConditioningPipeline &pipeline,
                                         int workers,
                                         std::size_t queue_capacity)
    : pipeline_(&pipeline), input_(queue_capacity),
      output_(queue_capacity)
{
    if (workers < 1)
        throw std::invalid_argument(
            "ParallelConditioner: workers must be >= 1");
    for (const auto &stage : pipeline.stages_) {
        auto slot = std::make_unique<StageSlot>();
        slot->stage = stage.get();
        slot->local = stage->chunkLocal();
        slot->acct = StageAccounting{stage->name()};
        slots_.push_back(std::move(slot));
    }
    live_workers_.store(workers, std::memory_order_relaxed);
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ParallelConditioner::~ParallelConditioner()
{
    abort();
}

void
ParallelConditioner::push(util::BitStream chunk)
{
    Item item;
    item.seq = next_push_seq_;
    item.bits = std::move(chunk);
    const std::uint64_t bits = item.bits.size();
    if (input_.push(std::move(item))) {
        ++next_push_seq_;
        in_bits_.fetch_add(bits, std::memory_order_relaxed);
    }
    // push() fails only once the run is aborted; the chunk is dropped.
}

void
ParallelConditioner::finishInput()
{
    input_.close();
}

std::optional<util::BitStream>
ParallelConditioner::pop()
{
    auto chunk = output_.pop();
    if (chunk)
        return chunk;
    // Closed and drained: surface the first worker error, once.
    std::lock_guard<std::mutex> lock(out_mu_);
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        std::rethrow_exception(err);
    }
    return std::nullopt;
}

std::optional<util::BitStream>
ParallelConditioner::tryPop(bool &would_block)
{
    util::BitStream out;
    if (output_.tryPop(out)) {
        would_block = false;
        return out;
    }
    if (!finished_.load(std::memory_order_acquire)) {
        would_block = true;
        return std::nullopt;
    }
    // The run finished between the tryPop and the flag read; a final
    // chunk (the flush tail) may have raced in.
    if (output_.tryPop(out)) {
        would_block = false;
        return out;
    }
    would_block = false;
    std::lock_guard<std::mutex> lock(out_mu_);
    if (error_) {
        std::exception_ptr err = error_;
        error_ = nullptr;
        std::rethrow_exception(err);
    }
    return std::nullopt;
}

void
ParallelConditioner::abort()
{
    if (!aborted_.exchange(true, std::memory_order_acq_rel)) {
        input_.close();
        output_.close();
        // Wake ticket waiters under their slot mutex so the aborted_
        // store cannot race past a waiter's predicate check.
        for (const auto &slot : slots_) {
            std::lock_guard<std::mutex> lock(slot->mu);
            slot->turn_cv.notify_all();
        }
    }
    joinWorkers();
}

bool
ParallelConditioner::finished() const
{
    return finished_.load(std::memory_order_acquire);
}

void
ParallelConditioner::workerLoop()
{
    while (true) {
        std::optional<Item> item = input_.pop();
        if (!item)
            break;
        if (aborted_.load(std::memory_order_acquire))
            continue; // Drain and drop in-flight chunks.
        try {
            util::BitStream result =
                runStages(item->seq, std::move(item->bits));
            if (!aborted_.load(std::memory_order_acquire))
                deposit(item->seq, std::move(result));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(out_mu_);
                if (!error_)
                    error_ = std::current_exception();
            }
            failRun();
        }
    }
    if (live_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        completeRun();
}

util::BitStream
ParallelConditioner::runStages(std::uint64_t seq, util::BitStream bits)
{
    for (const auto &slot_ptr : slots_) {
        StageSlot &slot = *slot_ptr;
        if (slot.local) {
            // Chunk-local: process outside any lock (the contract
            // guarantees concurrent calls are safe), then fold the
            // numbers into the shared accounting.
            const std::uint64_t in_bits = bits.size();
            const std::uint64_t in_ones = bits.popcount();
            bits = slot.stage->processOwned(std::move(bits));
            std::lock_guard<std::mutex> lock(slot.mu);
            slot.acct.in_bits += in_bits;
            slot.acct.in_ones += in_ones;
            slot.acct.out_bits += bits.size();
            slot.acct.out_ones += bits.popcount();
        } else {
            // Stateful: wait for this chunk's turn, process while
            // holding the slot (at most one mutex held at a time, in
            // stage order), then hand the ticket to seq + 1.
            std::unique_lock<std::mutex> lock(slot.mu);
            slot.turn_cv.wait(lock, [&] {
                return slot.next_seq == seq ||
                       aborted_.load(std::memory_order_acquire);
            });
            if (aborted_.load(std::memory_order_acquire))
                return {};
            slot.acct.in_bits += bits.size();
            slot.acct.in_ones += bits.popcount();
            bits = slot.stage->processOwned(std::move(bits));
            slot.acct.out_bits += bits.size();
            slot.acct.out_ones += bits.popcount();
            slot.acct.health_failures = slot.stage->failures();
            slot.next_seq = seq + 1;
            lock.unlock();
            slot.turn_cv.notify_all();
        }
    }
    return bits;
}

void
ParallelConditioner::deposit(std::uint64_t seq, util::BitStream bits)
{
    // The contiguous prefix is pushed while holding out_mu_ so two
    // workers draining back-to-back sequences cannot interleave their
    // output. A full output queue blocks the push -- with the lock
    // held -- but the consumer side (pop/tryPop) never takes out_mu_
    // before draining the queue, so it always frees space.
    std::lock_guard<std::mutex> lock(out_mu_);
    reorder_.emplace(seq, std::move(bits));
    auto it = reorder_.find(next_out_seq_);
    while (it != reorder_.end()) {
        if (!it->second.empty()) {
            out_bits_.fetch_add(it->second.size(),
                                std::memory_order_relaxed);
            output_.push(std::move(it->second));
        }
        reorder_.erase(it);
        ++next_out_seq_;
        it = reorder_.find(next_out_seq_);
    }
}

void
ParallelConditioner::failRun()
{
    if (aborted_.exchange(true, std::memory_order_acq_rel))
        return;
    input_.close();
    output_.close();
    for (const auto &slot : slots_) {
        std::lock_guard<std::mutex> lock(slot->mu);
        slot->turn_cv.notify_all();
    }
}

util::BitStream
ParallelConditioner::flushStages()
{
    // Runs single-threaded in the last exiting worker: every chunk has
    // already passed every stage, so this mirrors the serial
    // ConditioningPipeline::finish() front-to-back flush exactly.
    util::BitStream out;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        util::BitStream flushed = slots_[i]->stage->finish();
        slots_[i]->acct.out_bits += flushed.size();
        slots_[i]->acct.out_ones += flushed.popcount();
        if (flushed.empty())
            continue;
        util::BitStream bits = std::move(flushed);
        for (std::size_t j = i + 1; j < slots_.size(); ++j) {
            StageSlot &slot = *slots_[j];
            slot.acct.in_bits += bits.size();
            slot.acct.in_ones += bits.popcount();
            bits = slot.stage->processOwned(std::move(bits));
            slot.acct.out_bits += bits.size();
            slot.acct.out_ones += bits.popcount();
            slot.acct.health_failures = slot.stage->failures();
        }
        out.append(bits);
    }
    return out;
}

void
ParallelConditioner::completeRun()
{
    if (!aborted_.load(std::memory_order_acquire)) {
        try {
            util::BitStream tail = flushStages();
            if (!tail.empty()) {
                std::lock_guard<std::mutex> lock(out_mu_);
                out_bits_.fetch_add(tail.size(),
                                    std::memory_order_relaxed);
                output_.push(std::move(tail));
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(out_mu_);
            if (!error_)
                error_ = std::current_exception();
        }
    }
    // Fold the per-stage accounting back into the pipeline so
    // accounting()/healthy() reporting is identical to a serial run.
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        StageAccounting &dst = pipeline_->accounting_[i];
        const StageAccounting &src = slots_[i]->acct;
        dst.in_bits += src.in_bits;
        dst.in_ones += src.in_ones;
        dst.out_bits += src.out_bits;
        dst.out_ones += src.out_ones;
        dst.health_failures = slots_[i]->stage->failures();
    }
    finished_.store(true, std::memory_order_release);
    output_.close();
}

void
ParallelConditioner::joinWorkers()
{
    std::lock_guard<std::mutex> lock(join_mu_);
    for (std::thread &thread : threads_)
        if (thread.joinable())
            thread.join();
}

namespace {

/**
 * Compress the bits of @p value selected by @p mask toward the LSB,
 * preserving ascending bit order (PEXT semantics). One instruction
 * where BMI2 is available; a sparse mask walk otherwise -- the von
 * Neumann selector mask is usually sparse (half-entropy input keeps
 * only ~1/4 of the pairs), so the fallback loops over selected pairs,
 * not over all 64 bit positions.
 */
inline std::uint64_t
compress64(std::uint64_t value, std::uint64_t mask)
{
#if defined(__BMI2__)
    return _pext_u64(value, mask);
#else
    std::uint64_t out = 0;
    int out_pos = 0;
    while (mask != 0) {
        const std::uint64_t low = mask & (~mask + 1);
        if (value & low)
            out |= std::uint64_t{1} << out_pos;
        ++out_pos;
        mask &= mask - 1;
    }
    return out;
#endif
}

} // anonymous namespace

util::BitStream
VonNeumannStage::process(const util::BitStream &chunk)
{
    if (chunk.empty())
        return {};

    // Word-parallel pairwise extraction. The virtual stream is the
    // carried half-pair (if any) followed by the chunk, so pairs start
    // at even virtual offsets; virtual word k is the chunk's word k
    // shifted up one with the preceding bit (carry, or the top bit of
    // word k-1) filling bit 0. Per word: `first` holds the first bit
    // of each pair at the even positions, `second` the second bit
    // moved down onto them; a pair emits its first bit iff they
    // differ, so compressing `first` through the disagreement mask
    // yields the output bits already in pair order, LSB first --
    // exactly what appendBits() consumes.
    constexpr std::uint64_t kEven = 0x5555555555555555ULL;
    const std::vector<std::uint64_t> &w = chunk.words();
    const bool carry_in = have_half_;
    const std::uint64_t carry_bit = (have_half_ && half_) ? 1 : 0;
    const std::size_t n = chunk.size() + (carry_in ? 1 : 0);
    const std::size_t vwords = (n + 63) / 64;

    util::BitStream out;
    for (std::size_t k = 0; k < vwords; ++k) {
        std::uint64_t v;
        if (carry_in) {
            const std::uint64_t wk = k < w.size() ? w[k] : 0;
            const std::uint64_t in_bit =
                k == 0 ? carry_bit : w[k - 1] >> 63;
            v = (wk << 1) | in_bit;
        } else {
            v = w[k];
        }
        const std::size_t remaining = n - k * 64;
        const std::size_t pairs =
            (remaining < 64 ? remaining : 64) / 2;
        std::uint64_t pair_mask = kEven;
        if (pairs < 32)
            pair_mask &= (std::uint64_t{1} << (2 * pairs)) - 1;
        const std::uint64_t first = v & kEven;
        const std::uint64_t second = (v >> 1) & kEven;
        const std::uint64_t sel = (first ^ second) & pair_mask;
        out.appendBits(compress64(first, sel), std::popcount(sel));
    }

    // A lone trailing virtual bit -- always the chunk's last bit,
    // since the carry sits at the front -- becomes the new half-pair.
    if (n % 2 == 1) {
        have_half_ = true;
        half_ = chunk.at(chunk.size() - 1);
    } else {
        have_half_ = false;
    }
    return out;
}

util::BitStream
Sha256Stage::process(const util::BitStream &chunk)
{
    if (chunk.empty())
        return {};
    const auto digest = util::Sha256::hash(chunk.toBytesMsbFirst());
    util::BitStream out;
    for (std::uint8_t byte : digest)
        for (int b = 7; b >= 0; --b)
            out.append((byte >> b) & 1);
    return out;
}

// ------------------------------------------------------- stage factory

namespace {

using StageFactory =
    std::unique_ptr<ConditioningStage> (*)(const Params &);

std::map<std::string, StageFactory> &
stageRegistry()
{
    static std::map<std::string, StageFactory> registry;
    return registry;
}

const bool builtin_stages_registered = [] {
    registerStage("raw", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<RawStage>();
                  });
    registerStage("vonneumann", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<VonNeumannStage>();
                  });
    registerStage("sha256", [](const Params &)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<Sha256Stage>();
                  });
    registerStage("health", [](const Params &params)
                  -> std::unique_ptr<ConditioningStage> {
                      return std::make_unique<HealthTestStage>(
                          HealthTestConfig::fromParams(params));
                  });
    return true;
}();

} // anonymous namespace

bool
registerStage(const std::string &name, StageFactory factory)
{
    return stageRegistry().emplace(name, factory).second;
}

std::unique_ptr<ConditioningStage>
makeStage(const std::string &name, const Params &params)
{
    const auto &registry = stageRegistry();
    const auto it = registry.find(name);
    if (it == registry.end()) {
        std::string known;
        for (const auto &[stage_name, factory] : registry) {
            if (!known.empty())
                known += ", ";
            known += "\"" + stage_name + "\"";
        }
        throw std::invalid_argument(
            "makeStage: unknown conditioning stage \"" + name +
            "\" (known stages: " + known + ")");
    }
    return it->second(params);
}

std::vector<std::string>
stageNames()
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : stageRegistry())
        out.push_back(name);
    return out;
}

ConditioningPipeline
makePipeline(const std::vector<std::string> &names, const Params &params)
{
    ConditioningPipeline pipeline;
    for (const auto &name : names)
        pipeline.addStage(makeStage(name, params));
    return pipeline;
}

} // namespace drange::trng
