/**
 * @file
 * String-keyed factory for trng::EntropySource backends.
 *
 * Sources self-register a name + description + factory (the built-ins
 * via DRANGE_TRNG_REGISTER in sources.cc; external code can use the
 * same macro in any linked translation unit), and callers build a
 * fully-configured TRNG -- simulated device(s) included -- from a name
 * and a flat Params bag:
 *
 *     auto source = trng::Registry::make(
 *         "drange", trng::Params{{"banks", "4"}, {"seed", "7"}});
 *     auto bits = source->generate(100000);
 *
 * Unknown names throw std::invalid_argument listing the registered
 * names; unknown Params keys throw from the factory (see
 * Params::rejectUnknown), so runtime configuration fails loudly.
 */

#ifndef DRANGE_TRNG_REGISTRY_HH
#define DRANGE_TRNG_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trng/entropy_source.hh"
#include "trng/params.hh"

namespace drange::trng {

class Registry
{
  public:
    using Factory =
        std::function<std::unique_ptr<EntropySource>(const Params &)>;

    /**
     * Register @p factory under @p name. Returns false (keeping the
     * existing entry) when the name is already taken -- suitable for
     * static-initializer self-registration.
     */
    static bool add(const std::string &name,
                    const std::string &description, Factory factory);

    /**
     * Build the source registered under @p name.
     *
     * When @p params carries a `faults.*` section the built source is
     * wrapped in a sim::FaultInjector applying that schedule (see
     * src/sim/fault.hh); the section never reaches the factory, so any
     * registered source is faultable without per-source support.
     *
     * @throws std::invalid_argument for an unknown name (the message
     *         lists every registered name) or bad Params.
     */
    static std::unique_ptr<EntropySource>
    make(const std::string &name, const Params &params = {});

    /** Registered names, sorted. */
    static std::vector<std::string> names();

    /** One-line description of a registered source. */
    static std::string description(const std::string &name);

    static bool contains(const std::string &name);
};

/** Self-registration helper: expands to a static initializer calling
 * Registry::add. Use at namespace scope in a .cc file. */
#define DRANGE_TRNG_REGISTER(token, name, description, factory)        \
    static const bool drange_trng_registered_##token =                 \
        ::drange::trng::Registry::add(name, description, factory)

} // namespace drange::trng

#endif // DRANGE_TRNG_REGISTRY_HH
