#include "trng/health.hh"

#include <cmath>
#include <stdexcept>

#include "util/special_math.hh"

namespace drange::trng {

HealthTestConfig
HealthTestConfig::fromParams(const Params &params)
{
    HealthTestConfig config;
    config.min_entropy =
        params.getDouble("health_min_entropy", config.min_entropy);
    config.alpha = params.getDouble("health_alpha", config.alpha);
    config.window = static_cast<int>(
        params.getInt("health_window", config.window));
    if (!(config.min_entropy > 0.0) || config.min_entropy > 1.0)
        throw std::invalid_argument(
            "HealthTestConfig: health_min_entropy must be in (0, 1]");
    if (!(config.alpha > 0.0) || config.alpha >= 1.0)
        throw std::invalid_argument(
            "HealthTestConfig: health_alpha must be in (0, 1)");
    if (config.window < 2)
        throw std::invalid_argument(
            "HealthTestConfig: health_window must be >= 2");
    return config;
}

int
repetitionCountCutoff(double min_entropy, double alpha)
{
    // SP 800-90B 4.4.1: C = 1 + ceil(-log2(alpha) / H).
    return 1 + static_cast<int>(
                   std::ceil(-std::log2(alpha) / min_entropy));
}

int
adaptiveProportionCutoff(double min_entropy, double alpha, int window)
{
    // Exact upper binomial tail over the window's trailing
    // window - 1 samples: accumulate pmf(k) from k = n downward until
    // the tail first exceeds alpha; the previous k is the cutoff.
    const int n = window - 1;
    const double p = std::pow(2.0, -min_entropy);
    const double log_p = std::log(p);
    const double log_q = std::log1p(-p);
    const double lgn = util::logGamma(static_cast<double>(n) + 1.0);
    double tail = 0.0;
    for (int k = n; k >= 0; --k) {
        const double log_pmf =
            lgn - util::logGamma(static_cast<double>(k) + 1.0) -
            util::logGamma(static_cast<double>(n - k) + 1.0) +
            static_cast<double>(k) * log_p +
            static_cast<double>(n - k) * log_q;
        tail += std::exp(log_pmf);
        if (tail > alpha)
            return k + 1;
    }
    return 0;
}

RepetitionCountTest::RepetitionCountTest(const HealthTestConfig &config)
    : cutoff_(repetitionCountCutoff(config.min_entropy, config.alpha))
{
}

bool
RepetitionCountTest::feed(bool bit)
{
    if (have_last_ && bit == last_) {
        if (++run_length_ >= cutoff_) {
            ++failures_;
            run_length_ = 1; // Re-arm so one long stuck run keeps
                             // alarming instead of firing once.
        }
    } else {
        last_ = bit;
        have_last_ = true;
        run_length_ = 1;
    }
    return failures_ == 0;
}

void
RepetitionCountTest::reset()
{
    have_last_ = false;
    run_length_ = 0;
    failures_ = 0;
}

AdaptiveProportionTest::AdaptiveProportionTest(
    const HealthTestConfig &config)
    : window_(config.window),
      cutoff_(adaptiveProportionCutoff(config.min_entropy, config.alpha,
                                       config.window))
{
}

bool
AdaptiveProportionTest::feed(bool bit)
{
    bool ok = true;
    if (position_ == 0) {
        reference_ = bit;
        matches_ = 0;
    } else if (bit == reference_) {
        ++matches_;
    }
    if (++position_ == window_) {
        if (matches_ >= cutoff_) {
            ++failures_;
            ok = false;
        }
        position_ = 0;
    }
    return ok;
}

void
AdaptiveProportionTest::reset()
{
    position_ = 0;
    matches_ = 0;
    failures_ = 0;
}

HealthTestStage::HealthTestStage(const HealthTestConfig &config)
    : repetition_(config), proportion_(config)
{
}

util::BitStream
HealthTestStage::process(const util::BitStream &chunk)
{
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        const bool bit = chunk.at(i);
        repetition_.feed(bit);
        proportion_.feed(bit);
    }
    return chunk;
}

void
HealthTestStage::reset()
{
    repetition_.reset();
    proportion_.reset();
}

} // namespace drange::trng
