/**
 * @file
 * Pluggable post-processing stages for TRNG output.
 *
 * The former core::Conditioning enum closed the set of post-processing
 * options at three compile-time cases; ConditioningStage opens it: a
 * stage consumes the previous stage's chunks and emits conditioned
 * chunks, stages compose in order into a ConditioningPipeline (run by
 * core::StreamingTrng on the consumer side of the harvest pipeline),
 * and new stages register by name next to the built-ins
 * ("raw", "vonneumann", "sha256", "health" -- see registerStage()).
 *
 * Stages may hold state across chunks (the von Neumann corrector
 * carries its half-pair; the SP 800-90B health stage carries test
 * windows), so a pipeline is reset() at session start and finish()ed at
 * session end. The pipeline keeps per-stage entropy accounting --
 * bits in/out and the Shannon entropy of each stage's input and output
 * streams -- surfaced through core::StreamingStats.
 *
 * Parallelism contract: a stage that is a pure per-chunk function --
 * no state carried between process() calls, so concurrent calls on
 * different chunks are safe and chunk results are independent --
 * declares chunkLocal() == true (SHA-256, Raw). Carry-stateful stages
 * (von Neumann, health) keep the default false and are fed
 * sequence-numbered chunks strictly in order. ParallelConditioner
 * exploits the contract to run one pipeline chunk- and stage-parallel
 * over a worker pool while emitting output bit-identical to the
 * serial ConditioningPipeline: chunk-local stages fan out across
 * workers, stateful stages are serialized by a per-stage sequence
 * ticket, and a reorder buffer restores submission order at the end.
 */

#ifndef DRANGE_TRNG_CONDITIONING_HH
#define DRANGE_TRNG_CONDITIONING_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "trng/params.hh"
#include "util/bitstream.hh"
#include "util/chunk_queue.hh"

namespace drange::trng {

/** Per-stage entropy accounting over one session. */
struct StageAccounting
{
    std::string stage;           //!< Stage name().
    std::uint64_t in_bits = 0;   //!< Bits fed into the stage.
    std::uint64_t out_bits = 0;  //!< Bits the stage emitted.
    std::uint64_t in_ones = 0;   //!< Population count of the input.
    std::uint64_t out_ones = 0;  //!< Population count of the output.
    std::uint64_t health_failures = 0; //!< Health-test alarms raised.

    /** Shannon entropy (bits/bit) of the stage's input stream. */
    double inEntropy() const;
    /** Shannon entropy (bits/bit) of the stage's output stream. */
    double outEntropy() const;
};

/**
 * One conditioning step. Implementations must be deterministic
 * functions of the bits they have consumed since the last reset().
 */
class ConditioningStage
{
  public:
    virtual ~ConditioningStage() = default;

    /** Registry name of the stage ("vonneumann", "sha256", ...). */
    virtual std::string name() const = 0;

    /** Condition one chunk; may emit fewer/more bits than consumed,
     * including none (state accumulates until a later chunk). */
    virtual util::BitStream process(const util::BitStream &chunk) = 0;

    /**
     * Move-aware variant of process() for the zero-copy hand-off path:
     * the caller cedes ownership of @p chunk. The default forwards to
     * process(); pass-through stages (Raw) override it to move the
     * chunk instead of copying it.
     */
    virtual util::BitStream processOwned(util::BitStream chunk)
    {
        return process(chunk);
    }

    /**
     * Parallelism contract. True promises process() is a pure
     * function of its chunk -- no state carried across calls -- and
     * safe to call concurrently from several threads, so a
     * ParallelConditioner may reorder and overlap chunks through this
     * stage freely. Stateful stages keep the default false and are
     * run strictly in chunk-sequence order.
     */
    virtual bool chunkLocal() const { return false; }

    /** Flush bits still buffered at session end (default: none). */
    virtual util::BitStream finish() { return {}; }

    /** Drop all carried state; called at session start. */
    virtual void reset() {}

    /** False once the stage has raised a permanent alarm (health
     * tests); healthy stages always return true. */
    virtual bool healthy() const { return true; }

    /** Alarms raised since reset() (health tests; 0 otherwise). */
    virtual std::uint64_t failures() const { return 0; }
};

/**
 * An ordered list of stages. Chunks flow through the stages in
 * composition order; accounting() reports bits/entropy at every
 * stage boundary.
 */
class ConditioningPipeline
{
  public:
    ConditioningPipeline() = default;
    explicit ConditioningPipeline(
        std::vector<std::unique_ptr<ConditioningStage>> stages);

    ConditioningPipeline(ConditioningPipeline &&) = default;
    ConditioningPipeline &operator=(ConditioningPipeline &&) = default;

    /** Append @p stage to the end of the pipeline. */
    void addStage(std::unique_ptr<ConditioningStage> stage);

    bool empty() const { return stages_.empty(); }
    std::size_t size() const { return stages_.size(); }

    /** Run @p chunk through every stage in order. */
    util::BitStream process(const util::BitStream &chunk);

    /** Move-aware overload: no copy on the pass-through (Raw) path. */
    util::BitStream process(util::BitStream &&chunk);

    /** Flush every stage in order, feeding flushed bits downstream. */
    util::BitStream finish();

    /** Reset every stage and zero the accounting. */
    void reset();

    /** True while every stage is healthy. */
    bool healthy() const;

    /** Per-stage accounting since the last reset(). */
    const std::vector<StageAccounting> &accounting() const
    {
        return accounting_;
    }

    const ConditioningStage &stage(std::size_t idx) const
    {
        return *stages_.at(idx);
    }

  private:
    friend class ParallelConditioner;

    util::BitStream run(std::size_t first_stage, util::BitStream bits);

    std::vector<std::unique_ptr<ConditioningStage>> stages_;
    std::vector<StageAccounting> accounting_;
};

/**
 * Chunk- and stage-parallel executor over a ConditioningPipeline.
 *
 * A worker pool drains a bounded util::ChunkQueue of (seq, BitStream)
 * records; each worker carries its chunk through the whole stage list.
 * Chunk-local stages (ConditioningStage::chunkLocal()) run wherever a
 * worker happens to be -- several chunks may be inside SHA-256 at
 * once -- while stateful stages are gated by a per-stage sequence
 * ticket so they consume chunks strictly in submission order (the von
 * Neumann carry and the health-test windows see the exact serial
 * stream). Finished chunks land in a reorder buffer that releases the
 * contiguous prefix into the output queue, so consumers always see
 * chunks in submission order: for every stage list the output is
 * bit-identical to running the same chunks through the serial
 * pipeline, regardless of worker count or scheduling.
 *
 * The conditioner borrows the pipeline's stages (reset them via
 * ConditioningPipeline::reset() before constructing) and writes the
 * per-stage accounting back into the pipeline when the run completes,
 * so StreamingStats reporting is unchanged. push() must come from one
 * thread; pop() from one thread (they may be the same).
 *
 * Lifecycle: push() chunks, finishInput() once, pop() until nullopt
 * (the stateful stages' flushed tail arrives as the final chunk), then
 * destroy -- or abort() to tear down mid-stream (in-flight chunks are
 * dropped, workers join, no flush).
 */
class ParallelConditioner
{
  public:
    /** Spin up @p workers threads over @p pipeline's stages.
     * @p queue_capacity bounds both the input and the output queue
     * (backpressure toward the producer resp. the consumer). */
    ParallelConditioner(ConditioningPipeline &pipeline, int workers,
                        std::size_t queue_capacity = 16);

    /** abort()s if the run is still live. */
    ~ParallelConditioner();

    ParallelConditioner(const ParallelConditioner &) = delete;
    ParallelConditioner &operator=(const ParallelConditioner &) = delete;

    /** Queue @p chunk (assigned the next sequence number), blocking
     * while the input queue is full. Single producer thread. */
    void push(util::BitStream chunk);

    /** No more input: once in-flight chunks drain, the stages are
     * finish()ed front-to-back and the tail (if any) is emitted as the
     * final output chunk, then the output closes. */
    void finishInput();

    /** Next conditioned chunk in submission order; empty per-chunk
     * results are skipped. nullopt once the run is complete. Rethrows
     * the first worker error, if any. */
    std::optional<util::BitStream> pop();

    /** Non-blocking pop(). nullopt with @p would_block set when no
     * chunk is ready yet; with it clear when the run is complete. */
    std::optional<util::BitStream> tryPop(bool &would_block);

    /** Tear down mid-stream: closes both queues, drops in-flight
     * chunks, joins the workers. No flush tail. Idempotent. */
    void abort();

    /** True once every chunk has been conditioned and the flush tail
     * emitted (or the run was abort()ed). */
    bool finished() const;

    /** Conditioned bits emitted so far (including the flush tail). */
    std::uint64_t outBits() const
    {
        return out_bits_.load(std::memory_order_relaxed);
    }

    /** Raw bits accepted via push(). */
    std::uint64_t inBits() const
    {
        return in_bits_.load(std::memory_order_relaxed);
    }

    int workers() const { return static_cast<int>(threads_.size()); }

  private:
    struct Item
    {
        std::uint64_t seq = 0;
        util::BitStream bits;
    };

    /** Per-stage execution slot: the sequence ticket serializing
     * stateful stages and the accounting shared by all workers. */
    struct StageSlot
    {
        ConditioningStage *stage = nullptr;
        bool local = false; //!< chunkLocal(): no ticket needed.
        std::mutex mu;
        std::condition_variable turn_cv; //!< next_seq advanced.
        std::uint64_t next_seq = 0;      //!< Next chunk this stage admits.
        StageAccounting acct;
    };

    void workerLoop();
    util::BitStream runStages(std::uint64_t seq, util::BitStream bits);
    void deposit(std::uint64_t seq, util::BitStream bits);
    void failRun();
    util::BitStream flushStages();
    void completeRun();
    void joinWorkers();

    ConditioningPipeline *pipeline_;
    std::vector<std::unique_ptr<StageSlot>> slots_;
    util::ChunkQueue<Item> input_;
    util::ChunkQueue<util::BitStream> output_;

    std::uint64_t next_push_seq_ = 0; //!< Producer thread only.
    std::atomic<std::uint64_t> in_bits_{0};
    std::atomic<std::uint64_t> out_bits_{0};
    std::atomic<int> live_workers_{0};
    std::atomic<bool> aborted_{false};
    std::atomic<bool> finished_{false};

    std::mutex out_mu_; //!< Guards the reorder buffer + error slot.
    std::map<std::uint64_t, util::BitStream> reorder_;
    std::uint64_t next_out_seq_ = 0;
    std::exception_ptr error_;

    std::mutex join_mu_; //!< Serializes joinWorkers() callers.
    std::vector<std::thread> threads_;
};

/** Identity stage: passes chunks through unchanged. */
class RawStage final : public ConditioningStage
{
  public:
    std::string name() const override { return "raw"; }
    util::BitStream process(const util::BitStream &chunk) override
    {
        return chunk;
    }
    util::BitStream processOwned(util::BitStream chunk) override
    {
        return chunk; // Pass-through: keep the caller's buffer.
    }
    bool chunkLocal() const override { return true; }
};

/**
 * Von Neumann corrector as a stage: consumes bit pairs, emits 0 for
 * 01 and 1 for 10, nothing for 00/11; the half-pair carries across
 * chunk boundaries so output is chunking-invariant.
 */
class VonNeumannStage final : public ConditioningStage
{
  public:
    std::string name() const override { return "vonneumann"; }
    util::BitStream process(const util::BitStream &chunk) override;
    void reset() override { have_half_ = false; }

  private:
    bool have_half_ = false;
    bool half_ = false;
};

/** SHA-256 stage: each input chunk conditions independently to one
 * 256-bit digest (chunk-local, therefore overlappable). */
class Sha256Stage final : public ConditioningStage
{
  public:
    std::string name() const override { return "sha256"; }
    util::BitStream process(const util::BitStream &chunk) override;
    bool chunkLocal() const override { return true; }
};

/**
 * Register a stage factory under @p name so makeStage() (and therefore
 * StreamingConfig::conditioning / the "streaming" registry source) can
 * build it from flat configuration. Returns false (without replacing)
 * when the name is taken. The built-ins self-register.
 */
bool registerStage(
    const std::string &name,
    std::unique_ptr<ConditioningStage> (*factory)(const Params &));

/**
 * Build the stage registered under @p name.
 * @throws std::invalid_argument (naming the known stages) when
 *         @p name is not registered.
 */
std::unique_ptr<ConditioningStage> makeStage(const std::string &name,
                                             const Params &params = {});

/** Names of every registered stage, sorted. */
std::vector<std::string> stageNames();

/**
 * Build a pipeline from a list of stage names (see makeStage());
 * @p params is handed to every stage factory.
 */
ConditioningPipeline makePipeline(const std::vector<std::string> &names,
                                  const Params &params = {});

} // namespace drange::trng

#endif // DRANGE_TRNG_CONDITIONING_HH
