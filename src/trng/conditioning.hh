/**
 * @file
 * Pluggable post-processing stages for TRNG output.
 *
 * The former core::Conditioning enum closed the set of post-processing
 * options at three compile-time cases; ConditioningStage opens it: a
 * stage consumes the previous stage's chunks and emits conditioned
 * chunks, stages compose in order into a ConditioningPipeline (run by
 * core::StreamingTrng on the consumer side of the harvest pipeline),
 * and new stages register by name next to the built-ins
 * ("raw", "vonneumann", "sha256", "health" -- see registerStage()).
 *
 * Stages may hold state across chunks (the von Neumann corrector
 * carries its half-pair; the SP 800-90B health stage carries test
 * windows), so a pipeline is reset() at session start and finish()ed at
 * session end. The pipeline keeps per-stage entropy accounting --
 * bits in/out and the Shannon entropy of each stage's input and output
 * streams -- surfaced through core::StreamingStats.
 */

#ifndef DRANGE_TRNG_CONDITIONING_HH
#define DRANGE_TRNG_CONDITIONING_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trng/params.hh"
#include "util/bitstream.hh"

namespace drange::trng {

/** Per-stage entropy accounting over one session. */
struct StageAccounting
{
    std::string stage;           //!< Stage name().
    std::uint64_t in_bits = 0;   //!< Bits fed into the stage.
    std::uint64_t out_bits = 0;  //!< Bits the stage emitted.
    std::uint64_t in_ones = 0;   //!< Population count of the input.
    std::uint64_t out_ones = 0;  //!< Population count of the output.
    std::uint64_t health_failures = 0; //!< Health-test alarms raised.

    /** Shannon entropy (bits/bit) of the stage's input stream. */
    double inEntropy() const;
    /** Shannon entropy (bits/bit) of the stage's output stream. */
    double outEntropy() const;
};

/**
 * One conditioning step. Implementations must be deterministic
 * functions of the bits they have consumed since the last reset().
 */
class ConditioningStage
{
  public:
    virtual ~ConditioningStage() = default;

    /** Registry name of the stage ("vonneumann", "sha256", ...). */
    virtual std::string name() const = 0;

    /** Condition one chunk; may emit fewer/more bits than consumed,
     * including none (state accumulates until a later chunk). */
    virtual util::BitStream process(const util::BitStream &chunk) = 0;

    /** Flush bits still buffered at session end (default: none). */
    virtual util::BitStream finish() { return {}; }

    /** Drop all carried state; called at session start. */
    virtual void reset() {}

    /** False once the stage has raised a permanent alarm (health
     * tests); healthy stages always return true. */
    virtual bool healthy() const { return true; }

    /** Alarms raised since reset() (health tests; 0 otherwise). */
    virtual std::uint64_t failures() const { return 0; }
};

/**
 * An ordered list of stages. Chunks flow through the stages in
 * composition order; accounting() reports bits/entropy at every
 * stage boundary.
 */
class ConditioningPipeline
{
  public:
    ConditioningPipeline() = default;
    explicit ConditioningPipeline(
        std::vector<std::unique_ptr<ConditioningStage>> stages);

    ConditioningPipeline(ConditioningPipeline &&) = default;
    ConditioningPipeline &operator=(ConditioningPipeline &&) = default;

    /** Append @p stage to the end of the pipeline. */
    void addStage(std::unique_ptr<ConditioningStage> stage);

    bool empty() const { return stages_.empty(); }
    std::size_t size() const { return stages_.size(); }

    /** Run @p chunk through every stage in order. */
    util::BitStream process(const util::BitStream &chunk);

    /** Flush every stage in order, feeding flushed bits downstream. */
    util::BitStream finish();

    /** Reset every stage and zero the accounting. */
    void reset();

    /** True while every stage is healthy. */
    bool healthy() const;

    /** Per-stage accounting since the last reset(). */
    const std::vector<StageAccounting> &accounting() const
    {
        return accounting_;
    }

    const ConditioningStage &stage(std::size_t idx) const
    {
        return *stages_.at(idx);
    }

  private:
    util::BitStream run(std::size_t first_stage, util::BitStream bits);

    std::vector<std::unique_ptr<ConditioningStage>> stages_;
    std::vector<StageAccounting> accounting_;
};

/** Identity stage: passes chunks through unchanged. */
class RawStage final : public ConditioningStage
{
  public:
    std::string name() const override { return "raw"; }
    util::BitStream process(const util::BitStream &chunk) override
    {
        return chunk;
    }
};

/**
 * Von Neumann corrector as a stage: consumes bit pairs, emits 0 for
 * 01 and 1 for 10, nothing for 00/11; the half-pair carries across
 * chunk boundaries so output is chunking-invariant.
 */
class VonNeumannStage final : public ConditioningStage
{
  public:
    std::string name() const override { return "vonneumann"; }
    util::BitStream process(const util::BitStream &chunk) override;
    void reset() override { have_half_ = false; }

  private:
    bool have_half_ = false;
    bool half_ = false;
};

/** SHA-256 stage: each input chunk conditions independently to one
 * 256-bit digest (chunk-local, therefore overlappable). */
class Sha256Stage final : public ConditioningStage
{
  public:
    std::string name() const override { return "sha256"; }
    util::BitStream process(const util::BitStream &chunk) override;
};

/**
 * Register a stage factory under @p name so makeStage() (and therefore
 * StreamingConfig::conditioning / the "streaming" registry source) can
 * build it from flat configuration. Returns false (without replacing)
 * when the name is taken. The built-ins self-register.
 */
bool registerStage(
    const std::string &name,
    std::unique_ptr<ConditioningStage> (*factory)(const Params &));

/**
 * Build the stage registered under @p name.
 * @throws std::invalid_argument (naming the known stages) when
 *         @p name is not registered.
 */
std::unique_ptr<ConditioningStage> makeStage(const std::string &name,
                                             const Params &params = {});

/** Names of every registered stage, sorted. */
std::vector<std::string> stageNames();

/**
 * Build a pipeline from a list of stage names (see makeStage());
 * @p params is handed to every stage factory.
 */
ConditioningPipeline makePipeline(const std::vector<std::string> &names,
                                  const Params &params = {});

} // namespace drange::trng

#endif // DRANGE_TRNG_CONDITIONING_HH
