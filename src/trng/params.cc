#include "trng/params.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace drange::trng {

namespace {

[[noreturn]] void
badValue(const std::string &key, const std::string &value,
         const char *wanted)
{
    throw std::invalid_argument("Params: key \"" + key + "\" holds \"" +
                                value + "\", expected " + wanted);
}

std::string
trim(const std::string &text)
{
    const auto begin = text.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = text.find_last_not_of(" \t\r");
    return text.substr(begin, end - begin + 1);
}

[[noreturn]] void
badLine(const std::string &path, int line, const std::string &why)
{
    throw std::invalid_argument("Params::fromFile: " + path + ":" +
                                std::to_string(line) + ": " + why);
}

} // anonymous namespace

Params
Params::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::invalid_argument("Params::fromFile: cannot read \"" +
                                    path + "\"");

    Params params;
    std::string section_prefix;
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        // Strip comments first so "key = value  # why" works.
        if (const auto hash = raw.find_first_of("#;");
            hash != std::string::npos)
            raw.erase(hash);
        const std::string line = trim(raw);
        if (line.empty())
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                badLine(path, lineno,
                        "unterminated section header \"" + line + "\"");
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty())
                badLine(path, lineno, "empty section name");
            section_prefix = name + ".";
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            badLine(path, lineno,
                    "expected \"key = value\" or \"[section]\", got \"" +
                        line + "\"");
        const std::string key = trim(line.substr(0, eq));
        if (key.empty())
            badLine(path, lineno, "empty key");
        const std::string full_key = section_prefix + key;
        if (params.has(full_key))
            badLine(path, lineno,
                    "key \"" + full_key + "\" set twice");
        params.set(full_key, trim(line.substr(eq + 1)));
    }
    return params;
}

Params::Params(
    std::initializer_list<std::pair<std::string, std::string>> entries)
{
    for (const auto &[key, value] : entries)
        values_[key] = value;
}

Params &
Params::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
    return *this;
}

Params &
Params::set(const std::string &key, const char *value)
{
    return set(key, std::string(value));
}

Params &
Params::set(const std::string &key, std::int64_t value)
{
    return set(key, std::to_string(value));
}

Params &
Params::set(const std::string &key, int value)
{
    return set(key, std::to_string(value));
}

Params &
Params::set(const std::string &key, double value)
{
    // Round-trip precision: std::to_string's fixed 6 decimals would
    // destroy values like the 2^-20 health-test alpha.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return set(key, std::string(buf));
}

Params &
Params::set(const std::string &key, bool value)
{
    return set(key, std::string(value ? "true" : "false"));
}

const std::string *
Params::find(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        return nullptr;
    consumed_.insert(key);
    return &it->second;
}

bool
Params::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Params::getString(const std::string &key,
                  const std::string &fallback) const
{
    const std::string *value = find(key);
    return value ? *value : fallback;
}

std::int64_t
Params::getInt(const std::string &key, std::int64_t fallback) const
{
    const std::string *value = find(key);
    if (!value)
        return fallback;
    try {
        std::size_t end = 0;
        const std::int64_t parsed = std::stoll(*value, &end);
        if (end != value->size())
            badValue(key, *value, "an integer");
        return parsed;
    } catch (const std::invalid_argument &) {
        badValue(key, *value, "an integer");
    } catch (const std::out_of_range &) {
        badValue(key, *value, "an integer in range");
    }
}

double
Params::getDouble(const std::string &key, double fallback) const
{
    const std::string *value = find(key);
    if (!value)
        return fallback;
    try {
        std::size_t end = 0;
        const double parsed = std::stod(*value, &end);
        if (end != value->size())
            badValue(key, *value, "a number");
        return parsed;
    } catch (const std::invalid_argument &) {
        badValue(key, *value, "a number");
    } catch (const std::out_of_range &) {
        badValue(key, *value, "a number in range");
    }
}

bool
Params::getBool(const std::string &key, bool fallback) const
{
    const std::string *value = find(key);
    if (!value)
        return fallback;
    if (*value == "true" || *value == "1")
        return true;
    if (*value == "false" || *value == "0")
        return false;
    badValue(key, *value, "a boolean (true/false/1/0)");
}

std::vector<std::string>
Params::getList(const std::string &key) const
{
    std::vector<std::string> out;
    const std::string *value = find(key);
    if (!value)
        return out;
    std::size_t begin = 0;
    while (begin <= value->size()) {
        std::size_t end = value->find(',', begin);
        if (end == std::string::npos)
            end = value->size();
        if (end > begin)
            out.push_back(value->substr(begin, end - begin));
        begin = end + 1;
    }
    return out;
}

std::vector<std::string>
Params::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &[key, value] : values_)
        out.push_back(key);
    return out;
}

Params
Params::section(const std::string &prefix) const
{
    const std::string full_prefix = prefix + ".";
    Params out;
    for (const auto &[key, value] : values_) {
        if (key.rfind(full_prefix, 0) != 0)
            continue;
        out.set(key.substr(full_prefix.size()), value);
        consumed_.insert(key);
    }
    return out;
}

std::vector<std::string>
Params::sections(const std::string &prefix) const
{
    const std::string full_prefix = prefix + ".";
    std::vector<std::string> out;
    for (const auto &[key, value] : values_) {
        if (key.rfind(full_prefix, 0) != 0)
            continue;
        const auto dot = key.find('.', full_prefix.size());
        if (dot == std::string::npos)
            continue; // "pool.x" is a key, not a section, under "pool".
        const std::string name = key.substr(0, dot);
        if (out.empty() || out.back() != name)
            out.push_back(name);
    }
    // values_ is sorted, so duplicates are adjacent; the guard above
    // already dropped them.
    return out;
}

void
Params::rejectUnknown(const std::string &context) const
{
    std::string unknown;
    for (const auto &[key, value] : values_) {
        if (consumed_.count(key))
            continue;
        if (!unknown.empty())
            unknown += ", ";
        unknown += "\"" + key + "\"";
    }
    if (!unknown.empty())
        throw std::invalid_argument(context +
                                    ": unknown parameter key(s) " +
                                    unknown);
}

} // namespace drange::trng
