/**
 * @file
 * String key/value parameter bag driving the runtime-selectable TRNG
 * registry (trng::Registry) and the conditioning-stage factory.
 *
 * Params is deliberately tiny: every value is stored as a string and
 * parsed on access, so sources are selectable from flat configuration
 * (command line, config file, service request) without per-backend
 * plumbing. Typed getters throw std::invalid_argument on malformed
 * values; rejectUnknown() throws on keys no getter ever consumed,
 * which turns configuration typos into hard errors instead of
 * silently-ignored settings.
 */

#ifndef DRANGE_TRNG_PARAMS_HH
#define DRANGE_TRNG_PARAMS_HH

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace drange::trng {

/**
 * Immutable-ish string map with typed, default-carrying getters.
 *
 * Access is tracked (mutable bookkeeping): after a factory has read
 * every key it understands, rejectUnknown() reports the leftovers.
 */
class Params
{
  public:
    Params() = default;
    Params(std::initializer_list<std::pair<std::string, std::string>>
               entries);

    /**
     * Parse an INI-style config file into a flat Params bag:
     *
     *     # comment (';' also starts one)
     *     key = value          -> {"key", "value"}
     *     [pool.fast]          -> keys below prefixed "pool.fast."
     *     source = streaming   -> {"pool.fast.source", "streaming"}
     *
     * Values run to end of line (commas fine: "conditioning =
     * sha256,health"). Malformed input -- an unreadable file, a line
     * with no '=', an empty key, an unterminated or empty [section],
     * a key set twice -- throws std::invalid_argument naming the line.
     * Used by tools/trngd.cc; see Params::section() for unpacking.
     */
    static Params fromFile(const std::string &path);

    /** Set (or overwrite) a key. Returns *this for chaining. */
    Params &set(const std::string &key, const std::string &value);
    Params &set(const std::string &key, const char *value);
    Params &set(const std::string &key, std::int64_t value);
    Params &set(const std::string &key, int value);
    Params &set(const std::string &key, double value);
    Params &set(const std::string &key, bool value);

    bool has(const std::string &key) const;

    /** Value of @p key, or @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /**
     * Integer value of @p key, or @p fallback when absent.
     * @throws std::invalid_argument if present but not an integer.
     */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback = 0) const;

    /**
     * Floating-point value of @p key, or @p fallback when absent.
     * @throws std::invalid_argument if present but not a number.
     */
    double getDouble(const std::string &key, double fallback = 0.0) const;

    /**
     * Boolean value of @p key ("true"/"false"/"1"/"0", case-sensitive),
     * or @p fallback when absent.
     * @throws std::invalid_argument if present but none of the above.
     */
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Comma-separated list value of @p key; empty when absent. Empty
     * elements are dropped ("a,,b" -> {"a", "b"}). */
    std::vector<std::string> getList(const std::string &key) const;

    /** All keys, sorted. */
    std::vector<std::string> keys() const;

    /**
     * Sub-bag holding every "@p prefix.key" with the prefix stripped
     * (empty when none). The prefixed keys count as consumed in this
     * bag, so a factory can hand whole sections on and still call
     * rejectUnknown() on the rest.
     */
    Params section(const std::string &prefix) const;

    /**
     * Distinct one-level section names under @p prefix, sorted: with
     * keys "pool.a.source" and "pool.b.seed", sections("pool") is
     * {"pool.a", "pool.b"}. Does not consume anything.
     */
    std::vector<std::string> sections(const std::string &prefix) const;

    /**
     * @throws std::invalid_argument naming every key that no getter has
     * consumed so far, prefixed with @p context. Factories call this
     * last so misspelled configuration fails loudly.
     */
    void rejectUnknown(const std::string &context) const;

  private:
    const std::string *find(const std::string &key) const;

    std::map<std::string, std::string> values_;
    mutable std::set<std::string> consumed_;
};

} // namespace drange::trng

#endif // DRANGE_TRNG_PARAMS_HH
