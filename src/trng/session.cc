#include "trng/session.hh"

#include <stdexcept>
#include <utility>

#include "trng/service.hh"

namespace drange::trng {

Session::Session(Service *service,
                 std::shared_ptr<detail::SessionState> state)
    : service_(service), state_(std::move(state))
{
}

Session::~Session()
{
    close();
}

Session::Session(Session &&other) noexcept
    : service_(std::exchange(other.service_, nullptr)),
      state_(std::move(other.state_))
{
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        close();
        service_ = std::exchange(other.service_, nullptr);
        state_ = std::move(other.state_);
    }
    return *this;
}

util::BitStream
Session::read(std::size_t num_bits)
{
    return readAsync(num_bits).get();
}

std::future<util::BitStream>
Session::readAsync(std::size_t num_bits)
{
    if (!service_ || !state_)
        throw std::logic_error("trng::Session: empty handle");
    return service_->submit(state_, num_bits);
}

SessionStats
Session::stats() const
{
    if (!service_ || !state_)
        throw std::logic_error("trng::Session: empty handle");
    return service_->sessionStats(state_);
}

bool
Session::isOpen() const
{
    return service_ != nullptr && state_ != nullptr;
}

void
Session::close()
{
    if (service_ && state_)
        service_->closeSession(state_);
    service_ = nullptr;
    state_.reset();
}

} // namespace drange::trng
