#include "trng/entropy_source.hh"

#include <stdexcept>

#include "util/entropy.hh"

namespace drange::trng {

void
EntropySource::startContinuous()
{
    if (!info().streaming)
        throw std::logic_error(
            info().name +
            ": mechanism cannot stream (each batch needs an offline "
            "step), use bounded generate()");
    if (continuous_)
        throw std::logic_error(info().name +
                               ": continuous session already running");
    continuous_ = true;
}

std::optional<util::BitStream>
EntropySource::nextChunk()
{
    // Default pseudo-streaming session: serve the continuous consumer
    // with repeated bounded batches. Genuinely pipelined sources
    // (StreamingTrng) override this with an overlapped harvest.
    if (!continuous_)
        return std::nullopt;
    return generate(continuous_chunk_bits_);
}

void
EntropySource::stop()
{
    continuous_ = false;
}

void
fillEntropyFields(SourceStats &stats, const util::BitStream &bits)
{
    if (bits.empty())
        return;
    stats.shannon_entropy = util::shannonEntropy(bits);
    if (bits.size() >= 3)
        stats.min_entropy = util::minEntropy(bits, 3);
}

} // namespace drange::trng
