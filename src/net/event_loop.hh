/**
 * @file
 * Minimal epoll event loop: the reactor under net::Server,
 * net::Listener, net::Connection, and the trng_loadgen client.
 *
 * One thread owns the loop and calls runOnce()/run(); add()/modify()/
 * remove() must be called from that thread (they mutate the handler
 * table without locking). The two cross-thread entry points are
 * wakeup() -- async-signal-safe, one eventfd write, used by signal
 * handlers and Server::stop() -- and post(), which enqueues a closure
 * the loop thread runs after the next dispatch.
 *
 * Dispatch is level-triggered: a handler is invoked with the ready
 * event mask as long as its condition holds, and interest is adjusted
 * with modify() (that is how Connection arms/disarms EPOLLOUT for
 * write-side backpressure). Handlers are keyed by a registration id
 * rather than the fd, so a handler that closes its own fd -- whose
 * number the kernel may immediately recycle for an accept() in the
 * same batch -- cannot receive the stale events of its predecessor.
 */

#ifndef DRANGE_NET_EVENT_LOOP_HH
#define DRANGE_NET_EVENT_LOOP_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace drange::net {

class EventLoop
{
  public:
    /** Invoked with the ready epoll event mask (EPOLLIN | ...). */
    using Callback = std::function<void(std::uint32_t)>;

    /** @throws std::runtime_error when epoll/eventfd creation fails. */
    EventLoop();
    ~EventLoop();

    EventLoop(const EventLoop &) = delete;
    EventLoop &operator=(const EventLoop &) = delete;

    /** Register @p fd for @p events. Loop thread only. */
    void add(int fd, std::uint32_t events, Callback callback);

    /** Change the interest mask of a registered fd. No-op for an
     * unregistered fd (the handler may have removed itself). */
    void modify(int fd, std::uint32_t events);

    /** Unregister @p fd; pending events for it are dropped. Does not
     * close the fd. */
    void remove(int fd);

    /**
     * Wait up to @p timeout_ms (-1 = indefinitely) and dispatch ready
     * handlers, then run post()ed closures. @return number of fd
     * events dispatched.
     */
    int runOnce(int timeout_ms);

    /** runOnce(-1) until stop(). */
    void run();

    /** Make run() return after the current iteration. Thread-safe. */
    void stop();

    bool stopRequested() const { return stop_.load(); }

    /** Wake a blocked runOnce(). Async-signal-safe. */
    void wakeup();

    /** Run @p fn on the loop thread after the next dispatch.
     * Thread-safe; wakes the loop. */
    void post(std::function<void()> fn);

    std::size_t handlerCount() const { return by_fd_.size(); }

  private:
    struct Entry
    {
        int fd = -1;
        std::uint32_t events = 0;
        std::shared_ptr<Callback> callback;
    };

    int epoll_fd_ = -1;
    int wake_fd_ = -1; //!< eventfd; epoll data id 0.
    std::uint64_t next_id_ = 1;
    std::map<std::uint64_t, Entry> entries_;
    std::map<int, std::uint64_t> by_fd_;

    std::atomic<bool> stop_{false};
    std::mutex post_mu_;
    std::vector<std::function<void()>> posted_;
};

} // namespace drange::net

#endif // DRANGE_NET_EVENT_LOOP_HH
