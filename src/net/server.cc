#include "net/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/bitstream.hh"

namespace drange::net {

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Read one quota block from @p params, defaulting to @p defaults. */
QuotaConfig
quotaFrom(const trng::Params &params, const QuotaConfig &defaults,
          const std::string &context)
{
    QuotaConfig quota;
    quota.rate_bits_per_s = params.getDouble(
        "rate_bits_per_s", defaults.rate_bits_per_s);
    quota.burst_bits =
        params.getDouble("burst_bits", defaults.burst_bits);
    const std::int64_t outstanding = params.getInt(
        "max_outstanding_bytes",
        static_cast<std::int64_t>(defaults.max_outstanding_bytes));
    if (quota.rate_bits_per_s < 0 || quota.burst_bits < 0 ||
        outstanding <= 0)
        throw std::invalid_argument(
            context + ": quota values must be positive");
    quota.max_outstanding_bytes =
        static_cast<std::size_t>(outstanding);
    return quota;
}

TokenBucket
makeBucket(const QuotaConfig &quota, std::uint64_t now_ns)
{
    if (quota.rate_bits_per_s <= 0)
        return TokenBucket(); // Unlimited.
    const double burst = quota.burst_bits > 0
                             ? quota.burst_bits
                             : quota.rate_bits_per_s;
    return TokenBucket(quota.rate_bits_per_s, burst, now_ns);
}

} // namespace

ServerConfig
ServerConfig::fromParams(const trng::Params &net)
{
    ServerConfig config;

    const std::string tcp = net.getString("tcp_listen");
    if (!tcp.empty()) {
        std::uint16_t port = 0;
        parseHostPort(tcp, config.tcp_host, port);
        config.tcp_port = port;
    }

    const auto positive = [&net](const char *key,
                                 std::int64_t fallback) {
        const std::int64_t value = net.getInt(key, fallback);
        if (value <= 0)
            throw std::invalid_argument(
                std::string("[net] ") + key + " must be positive");
        return static_cast<std::size_t>(value);
    };
    config.max_connections = positive(
        "max_connections",
        static_cast<std::int64_t>(config.max_connections));
    config.max_output_queue_bytes = positive(
        "max_output_queue_bytes",
        static_cast<std::int64_t>(config.max_output_queue_bytes));
    config.max_pending_requests = positive(
        "max_pending_requests",
        static_cast<std::int64_t>(config.max_pending_requests));
    const std::int64_t sndbuf = net.getInt("sndbuf_bytes", 0);
    if (sndbuf < 0)
        throw std::invalid_argument(
            "[net] sndbuf_bytes must not be negative");
    config.sndbuf_bytes = static_cast<int>(sndbuf);

    config.quota = quotaFrom(net, config.quota, "[net]");

    const auto fraction = [&net](const char *key, double fallback) {
        const double value = net.getDouble(key, fallback);
        if (value < 0 || value > 1)
            throw std::invalid_argument(std::string("[net] ") + key +
                                        " must be in [0, 1]");
        return value;
    };
    config.degraded_low_watermark = fraction(
        "degraded_low_watermark", config.degraded_low_watermark);
    config.degraded_quarantine_fraction =
        fraction("degraded_quarantine_fraction",
                 config.degraded_quarantine_fraction);
    const auto positiveMs = [&net](const char *key, int fallback) {
        const std::int64_t value = net.getInt(key, fallback);
        if (value <= 0)
            throw std::invalid_argument(
                std::string("[net] ") + key + " must be positive");
        return static_cast<int>(value);
    };
    config.degraded_retry_ms =
        positiveMs("degraded_retry_ms", config.degraded_retry_ms);
    config.degraded_escalation_ms = positiveMs(
        "degraded_escalation_ms", config.degraded_escalation_ms);

    for (const std::string &name : net.sections("priority")) {
        const std::string id = name.substr(std::strlen("priority."));
        char *end = nullptr;
        const long priority = std::strtol(id.c_str(), &end, 10);
        if (id.empty() || (end && *end != '\0') || priority < 1)
            throw std::invalid_argument(
                "[net." + name + "]: priority must be an integer >= 1");
        const trng::Params sub = net.section(name);
        config.priority_quota[static_cast<int>(priority)] =
            quotaFrom(sub, config.quota, "[net." + name + "]");
        sub.rejectUnknown("[net." + name + "]");
    }

    net.rejectUnknown("[net]");
    return config;
}

Server::Server(trng::Service &service, ServerConfig config,
               trng::SessionConfig session_template)
    : service_(service), config_(std::move(config)),
      session_template_(std::move(session_template))
{
}

Server::~Server()
{
    // Destroy connections before the loop: Connection unregisters
    // from loop_ in its destructor.
    clients_.clear();
    tcp_listener_.reset();
    unix_listener_.reset();
}

void
Server::start()
{
    if (started_)
        return;
    if (config_.tcp_port < 0 && config_.unix_path.empty())
        throw std::runtime_error(
            "net::Server: no transport configured (need a TCP port "
            "and/or a Unix socket path)");
    if (config_.tcp_port >= 0)
        tcp_listener_ = Listener::tcp(
            loop_, config_.tcp_host,
            static_cast<std::uint16_t>(config_.tcp_port),
            [this](int fd) { onAccept(fd, true); });
    if (!config_.unix_path.empty())
        unix_listener_ = Listener::unixSocket(
            loop_, config_.unix_path,
            [this](int fd) { onAccept(fd, false); });
    started_ = true;
}

std::uint16_t
Server::tcpPort() const
{
    return tcp_listener_ ? tcp_listener_->port() : 0;
}

void
Server::run()
{
    if (!started_)
        throw std::logic_error("net::Server::run before start");
    for (;;) {
        if (loop_.stopRequested())
            break;
        loop_.runOnce(sweepTimeoutMs());
        sweep();
        if (config_.accept_limit > 0 &&
            accepted_ >= config_.accept_limit && clients_.empty())
            break; // Bounded accept run completed and drained.
    }
    closeListeners();
    // Close every connection (fails their outstanding requests) and
    // reap outside the callback stack.
    for (auto &entry : clients_)
        if (!entry.second->dead)
            entry.second->conn->close("server shutdown");
    clients_.clear();
}

void
Server::stop()
{
    loop_.stop();
}

ServerStats
Server::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
}

int
Server::sweepTimeoutMs() const
{
    if (total_in_flight_ > 0)
        return 1; // Poll the service futures promptly.
    if (total_pending_ > 0)
        return 5; // Waiting on tokens / output drain.
    return 100;
}

void
Server::updateDegraded(std::uint64_t now_ns)
{
    const bool fill_gate = config_.degraded_low_watermark > 0;
    const bool pool_gate = config_.degraded_quarantine_fraction > 0;
    if (!fill_gate && !pool_gate)
        return;

    if (now_ns >= next_health_poll_ns_) {
        // Rate-limit the Service stats snapshot: it takes every shard
        // lock, so polling it each epoll iteration would contend with
        // the producers for no fresher an answer.
        next_health_poll_ns_ = now_ns + 20'000'000ULL;
        const trng::ServiceStats health = service_.stats();
        pool_collapsed_ = health.healthy_members == 0;

        bool degraded = false;
        if (pool_gate && !health.members.empty()) {
            const double quarantined =
                static_cast<double>(health.quarantined_members) /
                static_cast<double>(health.members.size());
            degraded |= quarantined >=
                        config_.degraded_quarantine_fraction;
        }
        if (fill_gate && health.reservoir_capacity > 0 &&
            total_pending_ + total_in_flight_ > 0) {
            // Starvation means "demand waits on an empty pool", not
            // merely "the pool is low": an idle server with a drained
            // reservoir is not degraded.
            const double fill =
                static_cast<double>(health.reservoir_bits) /
                static_cast<double>(health.reservoir_capacity);
            degraded |= fill < config_.degraded_low_watermark;
        }

        if (degraded && !degraded_) {
            shed_threshold_ = 1; // Lowest class first.
            next_escalation_ns_ =
                now_ns + static_cast<std::uint64_t>(
                             config_.degraded_escalation_ms) *
                             1'000'000ULL;
        } else if (!degraded) {
            shed_threshold_ = 0;
        }
        if (degraded != degraded_) {
            degraded_ = degraded;
            std::lock_guard<std::mutex> lock(stats_mu_);
            stats_.degraded = degraded_;
        }
    }

    if (degraded_ && now_ns >= next_escalation_ns_) {
        next_escalation_ns_ =
            now_ns + static_cast<std::uint64_t>(
                         config_.degraded_escalation_ms) *
                         1'000'000ULL;
        // The highest class seen keeps being served unless the pool
        // has collapsed outright -- then nothing can be served and
        // every class gets the retry hint.
        const int cap = pool_collapsed_
                            ? max_priority_seen_
                            : std::max(1, max_priority_seen_ - 1);
        if (shed_threshold_ < cap)
            ++shed_threshold_;
    }
}

void
Server::sweep()
{
    const std::uint64_t now = nowNs();
    updateDegraded(now);
    for (auto &entry : clients_) {
        Client &client = *entry.second;
        if (client.dead)
            continue;
        if (client.linger_deadline_ns != 0 &&
            now >= client.linger_deadline_ns) {
            client.conn->close("linger timeout");
            continue;
        }
        if (client.conn->closing())
            continue; // Graceful drop in progress: the pending and
                      // in-flight work dies with the connection.
        drainReady(client);
        if (!client.dead) {
            admitPending(client, now);
            drainReady(client);
        }
        if (!client.dead)
            managePause(client);
    }
    // Reap closed connections outside any Connection callback.
    for (auto it = clients_.begin(); it != clients_.end();) {
        if (it->second->dead)
            it = clients_.erase(it);
        else
            ++it;
    }
}

void
Server::closeListeners()
{
    if (tcp_listener_)
        tcp_listener_->close();
    if (unix_listener_)
        unix_listener_->close();
}

void
Server::onAccept(int fd, bool tcp)
{
    if ((config_.accept_limit > 0 &&
         accepted_ >= config_.accept_limit) ||
        clients_.size() >= config_.max_connections) {
        ::close(fd);
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.rejected_accepts;
        return;
    }
    if (tcp) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    if (config_.sndbuf_bytes > 0)
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                     &config_.sndbuf_bytes,
                     sizeof(config_.sndbuf_bytes));

    ++accepted_;
    auto client = std::make_unique<Client>();
    Client *raw = client.get();
    client->id = next_client_id_++;
    // Hard output bound: the admission watermark plus one full
    // response; crossing it means the owner-side gate was defeated.
    client->conn = std::make_unique<Connection>(
        loop_, fd, /*max_payload_bytes=*/4096,
        config_.max_output_queue_bytes + config_.max_request_bytes +
            kHeaderBytes);

    Connection::Callbacks callbacks;
    callbacks.on_frame = [this, raw](Connection &, Frame &frame) {
        onFrame(*raw, frame);
    };
    callbacks.on_decode_error = [this, raw](Connection &,
                                            FrameDecoder::Error error) {
        onDecodeError(*raw, error);
    };
    callbacks.on_closed = [this, raw](Connection &,
                                      const std::string &reason) {
        onClosed(*raw, reason);
    };

    const std::uint64_t id = client->id;
    clients_[id] = std::move(client);
    clients_[id]->conn->start(std::move(callbacks));

    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.accepted;
        stats_.active = clients_.size();
    }
    if (config_.verbose)
        std::printf("trngd: connection %llu accepted (%s)\n",
                    static_cast<unsigned long long>(id),
                    tcp ? "tcp" : "unix");
    if (config_.accept_limit > 0 && accepted_ >= config_.accept_limit)
        closeListeners();
}

void
Server::onFrame(Client &client, Frame &frame)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.requests;
    }

    if (frame.kind != Frame::Kind::Request) {
        // Well-framed but nonsensical: a client must not send
        // response frames. Answer, then drop the connection.
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.protocol_errors;
        }
        respondError(client, kStatusProtocolError,
                     "unexpected response frame from client");
        closeSoon(client, "client sent response frame");
        return;
    }

    if (frame.request_bytes > config_.max_request_bytes) {
        // Graceful rejection: error frame, connection stays open.
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.protocol_errors;
        }
        respondError(client, kStatusProtocolError,
                     "request of " +
                         std::to_string(frame.request_bytes) +
                         " bytes exceeds max_request_bytes = " +
                         std::to_string(config_.max_request_bytes));
        return;
    }

    if (!client.session_open) {
        const int priority =
            frame.code > 0 ? static_cast<int>(frame.code) : 1;
        try {
            openSession(client, priority);
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.service_errors;
            respondError(client, kStatusError, e.what());
            closeSoon(client, "session open failed");
            return;
        }
    }

    client.pending.push_back(frame.request_bytes);
    ++total_pending_;
    admitPending(client, nowNs());
    // admitPending may have started a graceful close (failed session):
    // the error frame already answers everything this connection will
    // ever get, so no more output may be queued behind the half-close.
    if (!client.dead && !client.conn->closing())
        drainReady(client); // Often ready immediately (warm reservoir).
    if (!client.dead && !client.conn->closing())
        managePause(client);
}

void
Server::openSession(Client &client, int priority)
{
    trng::SessionConfig config = session_template_;
    config.priority = priority;
    client.session = service_.open(config);
    client.session_open = true;
    client.priority = priority;
    max_priority_seen_ = std::max(max_priority_seen_, priority);
    const auto it = config_.priority_quota.find(priority);
    client.quota = it != config_.priority_quota.end() ? it->second
                                                      : config_.quota;
    client.bucket = makeBucket(client.quota, nowNs());
}

void
Server::admitPending(Client &client, std::uint64_t now_ns)
{
    while (!client.pending.empty() && !client.dead &&
           !client.conn->closing()) {
        const std::uint32_t bytes = client.pending.front();

        if (client.conn->outputQueuedBytes() >=
            config_.max_output_queue_bytes) {
            if (!client.stalled) {
                client.stalled = true;
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.backpressure_stalls;
            }
            return; // Slow reader; re-admit once the queue drains.
        }
        client.stalled = false;

        if (degraded_ && client.priority <= shed_threshold_) {
            // Degraded mode: answer with a retry hint *now* instead
            // of queueing against a pool that cannot serve. The shed
            // marker takes the request's FIFO slot in in_flight so
            // responses still complete strictly in request order; no
            // quota tokens are consumed by a shed request.
            client.pending.pop_front();
            --total_pending_;
            InFlight shed;
            shed.busy = true;
            client.in_flight.push_back(std::move(shed));
            ++total_in_flight_;
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.busy_sheds;
            }
            continue;
        }

        if (client.outstanding_bytes > 0 &&
            client.outstanding_bytes + bytes >
                client.quota.max_outstanding_bytes) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.outstanding_stalls;
            return; // Wait for in-flight reads to complete.
        }

        if (!client.bucket.tryConsume(
                static_cast<double>(bytes) * 8.0, now_ns)) {
            if (!client.throttled) {
                client.throttled = true;
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.quota_throttles;
            }
            return; // Tokens accrue; the sweep retries.
        }
        client.throttled = false;

        InFlight in_flight;
        in_flight.bytes = bytes;
        try {
            in_flight.future = client.session.readAsync(
                static_cast<std::size_t>(bytes) * 8);
        } catch (const std::exception &e) {
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.service_errors;
            }
            client.pending.pop_front();
            --total_pending_;
            // A failed session stays failed (latched health alarm,
            // closed service): answer once, then drop the connection
            // like the original daemon did -- otherwise an alarmed
            // session spins error responses at wire speed.
            respondError(client, kStatusError, e.what());
            closeSoon(client, "service error");
            return;
        }
        client.pending.pop_front();
        --total_pending_;
        client.outstanding_bytes += bytes;
        client.in_flight.push_back(std::move(in_flight));
        ++total_in_flight_;
    }
}

void
Server::drainReady(Client &client)
{
    using namespace std::chrono_literals;
    while (!client.in_flight.empty() && !client.dead &&
           !client.conn->closing()) {
        InFlight &head = client.in_flight.front();
        if (head.busy) {
            unsigned char hint[kBusyPayloadBytes];
            encodeBusyPayload(hint, static_cast<std::uint32_t>(
                                        config_.degraded_retry_ms));
            std::vector<std::uint8_t> out;
            FrameEncoder::appendResponse(out, kStatusBusy, hint,
                                         sizeof(hint));
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.responses;
            }
            client.in_flight.pop_front();
            --total_in_flight_;
            client.conn->send(std::move(out));
            continue;
        }
        if (head.future.wait_for(0s) != std::future_status::ready)
            return; // Later futures complete after the head (FIFO).

        std::vector<std::uint8_t> out;
        try {
            const util::BitStream bits = head.future.get();
            const std::vector<std::uint8_t> payload =
                bits.toBytesMsbFirst();
            FrameEncoder::appendResponse(out, kStatusOk,
                                         payload.data(),
                                         payload.size());
            {
                std::lock_guard<std::mutex> lock(stats_mu_);
                ++stats_.responses;
                stats_.response_bytes += payload.size();
            }
            client.outstanding_bytes -= head.bytes;
            client.in_flight.pop_front();
            --total_in_flight_;
            client.conn->send(std::move(out)); // May close on overflow.
            continue;
        } catch (const std::exception &e) {
            FrameEncoder::appendResponse(out, kStatusError,
                                         std::string(e.what()));
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.responses;
            ++stats_.service_errors;
        }
        // Failed read: the session is done for (see admitPending).
        // Answer this request, drop the rest of the connection.
        client.outstanding_bytes -= head.bytes;
        client.in_flight.pop_front();
        --total_in_flight_;
        if (client.conn->send(std::move(out)))
            closeSoon(client, "service error");
        return;
    }
}

void
Server::managePause(Client &client)
{
    if (client.dead)
        return;
    const bool want_pause =
        client.pending.size() >= config_.max_pending_requests ||
        client.conn->outputQueuedBytes() >=
            config_.max_output_queue_bytes;
    if (want_pause && !client.conn->readingPaused()) {
        client.conn->pauseReading();
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.read_pauses;
    } else if (!want_pause && client.conn->readingPaused()) {
        client.conn->resumeReading();
    }
}

void
Server::respondError(Client &client, std::uint16_t status,
                     const std::string &message)
{
    if (client.dead)
        return;
    std::vector<std::uint8_t> out;
    FrameEncoder::appendResponse(out, status, message);
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.responses;
    }
    client.conn->send(std::move(out));
}

void
Server::closeSoon(Client &client, const std::string &reason)
{
    if (client.dead || client.conn->closing())
        return;
    client.conn->closeAfterFlush(reason);
    // Bound the lingering half-close: a peer that never answers the
    // FIN gets cut off by the sweep.
    if (!client.dead && !client.conn->closed())
        client.linger_deadline_ns = nowNs() + 5'000'000'000ULL;
}

void
Server::onDecodeError(Client &client, FrameDecoder::Error error)
{
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
    }
    const char *what =
        error == FrameDecoder::Error::OversizedPayload
            ? "oversized frame payload"
            : "malformed frame (bad magic)";
    // The byte stream cannot be re-synchronized: answer once so a
    // blocking client sees *why*, then close after the flush.
    respondError(client, kStatusProtocolError, what);
    closeSoon(client, what);
}

void
Server::onClosed(Client &client, const std::string &reason)
{
    if (client.dead)
        return;
    client.dead = true;
    total_pending_ -= client.pending.size();
    client.pending.clear();
    total_in_flight_ -= client.in_flight.size();
    client.in_flight.clear(); // Futures die; Session close fails them.
    if (client.session_open)
        client.session.close();
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.closed;
        stats_.active = clients_.size() > 0 ? clients_.size() - 1 : 0;
    }
    if (config_.verbose)
        std::printf("trngd: connection %llu closed (%s)\n",
                    static_cast<unsigned long long>(client.id),
                    reason.c_str());
}

} // namespace drange::net
