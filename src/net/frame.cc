#include "net/frame.hh"

#include <cstring>

namespace drange::net {

void
FrameEncoder::appendRequest(std::vector<std::uint8_t> &out,
                            std::uint16_t priority,
                            std::uint32_t num_bytes)
{
    unsigned char header[kHeaderBytes];
    encodeRequestHeader(header, priority, num_bytes);
    out.insert(out.end(), header, header + kHeaderBytes);
}

void
FrameEncoder::appendResponse(std::vector<std::uint8_t> &out,
                             std::uint16_t status,
                             const std::uint8_t *payload,
                             std::size_t payload_bytes)
{
    unsigned char header[kHeaderBytes];
    encodeResponseHeader(header, status,
                         static_cast<std::uint32_t>(payload_bytes));
    out.reserve(out.size() + kHeaderBytes + payload_bytes);
    out.insert(out.end(), header, header + kHeaderBytes);
    if (payload_bytes > 0)
        out.insert(out.end(), payload, payload + payload_bytes);
}

void
FrameEncoder::appendResponse(std::vector<std::uint8_t> &out,
                             std::uint16_t status,
                             const std::string &message)
{
    appendResponse(
        out, status,
        reinterpret_cast<const std::uint8_t *>(message.data()),
        message.size());
}

std::vector<std::uint8_t>
FrameEncoder::request(std::uint16_t priority, std::uint32_t num_bytes)
{
    std::vector<std::uint8_t> out;
    appendRequest(out, priority, num_bytes);
    return out;
}

std::vector<std::uint8_t>
FrameEncoder::response(std::uint16_t status,
                       const std::uint8_t *payload,
                       std::size_t payload_bytes)
{
    std::vector<std::uint8_t> out;
    appendResponse(out, status, payload, payload_bytes);
    return out;
}

void
FrameDecoder::feed(const void *data, std::size_t count)
{
    if (error_ != Error::None || count == 0)
        return;
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    // Compact the consumed prefix before growing, so a long-lived
    // connection's buffer stays proportional to one frame, not to its
    // whole history.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), bytes, bytes + count);
}

bool
FrameDecoder::next(Frame &out)
{
    if (error_ != Error::None)
        return false;
    if (buffered() < kHeaderBytes)
        return false;
    const std::uint8_t *header = buf_.data() + pos_;

    if (header[0] == kRequestMagic0 && header[1] == kRequestMagic1) {
        out.kind = Frame::Kind::Request;
        out.code = decode16(header + 2);
        out.request_bytes = decode32(header + 4);
        out.payload.clear();
        pos_ += kHeaderBytes;
        return true;
    }

    if (header[0] == kResponseMagic0 && header[1] == kResponseMagic1) {
        const std::uint32_t payload_bytes = decode32(header + 4);
        if (payload_bytes > max_payload_) {
            error_ = Error::OversizedPayload;
            return false;
        }
        if (buffered() < kHeaderBytes + payload_bytes)
            return false; // Wait for the rest of the payload.
        out.kind = Frame::Kind::Response;
        out.code = decode16(header + 2);
        out.request_bytes = 0;
        const std::uint8_t *payload = header + kHeaderBytes;
        out.payload.assign(payload, payload + payload_bytes);
        pos_ += kHeaderBytes + payload_bytes;
        return true;
    }

    error_ = Error::BadMagic;
    return false;
}

void
FrameDecoder::reset()
{
    buf_.clear();
    pos_ = 0;
    error_ = Error::None;
}

} // namespace drange::net
