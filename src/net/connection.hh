/**
 * @file
 * One non-blocking framed stream connection on an EventLoop.
 *
 * Connection is pure transport: it owns the fd, drains readable bytes
 * through an incremental FrameDecoder (delivering complete frames to
 * the on_frame callback -- partial reads and coalesced frames are the
 * decoder's problem, not the handler's), and maintains a bounded
 * output queue flushed opportunistically on send() and on EPOLLOUT.
 * Protocol state -- which side is client, sessions, quotas -- lives in
 * the owner (net::Server, trng_loadgen); both sides of the wire use
 * this same class.
 *
 * Write-side backpressure: send() queues what the socket will not take
 * immediately and arms EPOLLOUT; once the queue drains, EPOLLOUT is
 * disarmed again (level-triggered re-arm). If the queue ever exceeds
 * max_output_bytes, the peer is reading too slowly for the traffic the
 * owner keeps queueing and the connection is closed -- owners are
 * expected to stop producing (see Server's admission gate) well before
 * this hard bound.
 *
 * Read-side backpressure: pauseReading() drops EPOLLIN interest so the
 * kernel socket buffer (and eventually the peer's TCP window) absorbs
 * a flood the owner is not ready to admit; resumeReading() re-arms it.
 *
 * Single-threaded with its loop; no locks. Callbacks may call send(),
 * pause/resume, and close() re-entrantly. After close() the object is
 * inert but alive -- the owner deletes it outside the callback stack
 * (see Server's dead-connection sweep).
 */

#ifndef DRANGE_NET_CONNECTION_HH
#define DRANGE_NET_CONNECTION_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/event_loop.hh"
#include "net/frame.hh"

namespace drange::net {

class Connection
{
  public:
    struct Callbacks
    {
        /** A complete frame arrived. */
        std::function<void(Connection &, Frame &)> on_frame;
        /** The decoder poisoned itself (garbage magic / oversized
         * payload). The connection is still open; the owner decides
         * whether to answer before close(). */
        std::function<void(Connection &, FrameDecoder::Error)>
            on_decode_error;
        /** The connection closed (peer EOF, error, or close()). Runs
         * exactly once; the owner may delete this object afterwards,
         * but not from inside the callback. */
        std::function<void(Connection &, const std::string &reason)>
            on_closed;
    };

    /**
     * Adopt @p fd (made non-blocking here). @p max_payload_bytes
     * bounds decoded response payloads, @p max_output_bytes the
     * output queue (0 = unbounded).
     */
    Connection(EventLoop &loop, int fd, std::size_t max_payload_bytes,
               std::size_t max_output_bytes);

    /** Closes the fd if still open (without firing on_closed). */
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Register with the loop and start delivering callbacks. */
    void start(Callbacks callbacks);

    /**
     * Queue @p bytes and flush as much as the socket accepts now.
     * @return false when the bytes will not be delivered: the
     * connection closed (write error, output-queue overflow) or a
     * closeAfterFlush is in progress (the bytes are dropped -- nothing
     * may be queued behind the half-close).
     */
    bool send(std::vector<std::uint8_t> bytes);

    std::size_t outputQueuedBytes() const { return out_bytes_; }

    void pauseReading();
    void resumeReading();
    bool readingPaused() const { return paused_; }

    /** Flush the remaining output, half-close (SHUT_WR), then discard
     * input until the peer's EOF and close. The lingering read keeps
     * the kernel receive buffer empty so the close cannot degrade to
     * an RST that destroys the flushed output in flight; owners bound
     * the linger with a deadline (see Server). */
    void closeAfterFlush(const std::string &reason);

    /** True once closeAfterFlush has been requested. */
    bool closing() const { return flush_then_close_; }

    /** Close now; queued output is dropped. Fires on_closed once. */
    void close(const std::string &reason);

    bool closed() const { return closed_; }
    int fd() const { return fd_; }
    std::uint64_t bytesIn() const { return bytes_in_; }
    std::uint64_t bytesOut() const { return bytes_out_; }

  private:
    void onEvents(std::uint32_t events);
    void handleReadable();
    /** Write queued bytes until EAGAIN/empty; closes on error. */
    void flushOutput();
    /** Recompute the epoll interest mask from the current state. */
    void updateInterest();

    EventLoop &loop_;
    int fd_;
    Callbacks callbacks_;
    FrameDecoder decoder_;
    bool started_ = false;
    bool closed_ = false;
    bool paused_ = false;
    bool flush_then_close_ = false;
    bool shutdown_sent_ = false; //!< SHUT_WR done; draining to EOF.
    std::string flush_close_reason_;
    bool decode_error_reported_ = false;

    std::deque<std::vector<std::uint8_t>> out_;
    std::size_t out_front_offset_ = 0;
    std::size_t out_bytes_ = 0;
    std::size_t max_output_bytes_;

    std::uint64_t bytes_in_ = 0;
    std::uint64_t bytes_out_ = 0;
};

} // namespace drange::net

#endif // DRANGE_NET_CONNECTION_HH
