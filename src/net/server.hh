/**
 * @file
 * Entropy-service network front-end: one epoll event loop multiplexing
 * any number of framed-protocol client connections (TCP and/or
 * Unix-domain -- both transports share this single code path) onto a
 * trng::Service.
 *
 * Per connection, the server keeps the protocol state machine:
 *
 *  - The first request frame's priority opens the connection's
 *    trng::Session (so DRR fairness applies per client connection,
 *    exactly like the original thread-per-connection daemon).
 *  - Entropy reads go through Session::readAsync; the loop polls the
 *    oldest in-flight future per connection between epoll waits, so a
 *    slow or dry reservoir shard never blocks the accept path or the
 *    other connections. Responses complete strictly in request order.
 *  - Requests larger than max_request_bytes (or otherwise malformed
 *    but still well-framed) are answered with a kStatusProtocolError
 *    frame and the connection stays open; only an unframeable byte
 *    stream (garbage magic) forces an error frame followed by close.
 *
 * Quotas and backpressure, per connection:
 *
 *  - Token bucket (QuotaConfig::rate_bits_per_s / burst_bits):
 *    requests are admitted to the Service only when the bucket covers
 *    their bits; otherwise they wait in the connection's pending queue
 *    (throttled, not errored). Priority classes may override the
 *    default quota ([net.priority.N] config sections), so e.g.
 *    priority-2 clients can be a metered tier while priority-1 runs
 *    uncapped.
 *  - max_outstanding_bytes bounds the bytes a connection may have
 *    in flight inside the Service.
 *  - Admission also stops while the connection's output queue sits
 *    above max_output_queue_bytes (a slow reader buys backpressure,
 *    not unbounded buffering), and reading pauses (EPOLLIN dropped)
 *    once a connection queues max_pending_requests unadmitted
 *    requests, pushing the flood back into the peer's TCP window.
 *
 * Degraded mode (opt-in, see ServerConfig): when the Service reports
 * a starving reservoir or a mostly-quarantined pool, low-priority
 * requests are answered with kStatusBusy (retry-after hint) at
 * admission time instead of queueing unboundedly. Shed responses flow
 * through the same in-flight queue as real reads, so the strict
 * request-order response guarantee is preserved.
 *
 * The loop thread owns all state; stop() (async-signal-safe wakeup)
 * and stats() are the only cross-thread entry points.
 */

#ifndef DRANGE_NET_SERVER_HH
#define DRANGE_NET_SERVER_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/connection.hh"
#include "net/event_loop.hh"
#include "net/listener.hh"
#include "net/token_bucket.hh"
#include "trng/params.hh"
#include "trng/service.hh"
#include "trng/session.hh"

namespace drange::net {

/** Per-connection rate limit and outstanding-bytes bound. */
struct QuotaConfig
{
    double rate_bits_per_s = 0; //!< Delivered bits/s; 0 = unlimited.
    double burst_bits = 0;      //!< Bucket depth; 0 = one second of
                                //!< rate.
    std::size_t max_outstanding_bytes = 1u << 20; //!< In the Service.
};

struct ServerConfig
{
    std::string tcp_host;   //!< Empty = all interfaces.
    int tcp_port = -1;      //!< -1 = TCP disabled; 0 = ephemeral.
    std::string unix_path;  //!< Empty = Unix transport disabled.

    std::size_t max_request_bytes = 1u << 20;
    std::size_t max_connections = 4096;
    /** Admission stops while a connection's output queue exceeds
     * this; the hard close bound is this plus one max response. */
    std::size_t max_output_queue_bytes = 8u << 20;
    /** Reading pauses once this many requests wait unadmitted. */
    std::size_t max_pending_requests = 1024;
    /** SO_SNDBUF for accepted sockets; 0 keeps the kernel default
     * (which autotunes into megabytes on loopback). Capping it bounds
     * per-connection kernel memory and makes the output-queue
     * backpressure gate engage at a predictable depth. */
    int sndbuf_bytes = 0;

    long accept_limit = 0; //!< > 0: stop accepting after N, return
                           //!< from run() once they disconnect.
    bool verbose = false;

    QuotaConfig quota;                      //!< Default for any class.
    std::map<int, QuotaConfig> priority_quota; //!< Per-priority tiers.

    /**
     * Degraded mode (both triggers default off). When the entropy
     * pool is unhealthy the server sheds low-priority requests with a
     * kStatusBusy frame (retry-after hint attached) instead of
     * queueing them unboundedly; shedding starts at priority 1 and
     * widens one priority class per degraded_escalation_ms while the
     * condition persists, sparing the highest priority seen unless
     * the pool has collapsed entirely (no healthy members left).
     */
    /** Shed when the reservoir fill fraction drops below this while
     * requests are waiting. 0 disables the starvation trigger. */
    double degraded_low_watermark = 0.0;
    /** Shed when at least this fraction of pool members is
     * quarantined. 0 disables the quarantine trigger. */
    double degraded_quarantine_fraction = 0.0;
    int degraded_retry_ms = 100;      //!< Retry-after hint in frames.
    int degraded_escalation_ms = 250; //!< Shed-band widening period.

    /**
     * Parse a `[net]` config section (hand in
     * params.section("net")): tcp_listen = host:port,
     * max_connections, max_output_queue_bytes, max_pending_requests,
     * the default quota keys (rate_bits_per_s, burst_bits,
     * max_outstanding_bytes), and [net.priority.N] quota overrides.
     * Transport paths, max_request_bytes, and accept_limit stay with
     * the caller ([trngd] section / command line).
     * @throws std::invalid_argument on unknown keys or bad values.
     */
    static ServerConfig fromParams(const trng::Params &net);
};

struct ServerStats
{
    std::uint64_t accepted = 0;
    std::uint64_t rejected_accepts = 0; //!< Over max_connections/limit.
    std::size_t active = 0;
    std::uint64_t closed = 0;

    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t response_bytes = 0; //!< Entropy payload bytes sent.
    std::uint64_t protocol_errors = 0;
    std::uint64_t service_errors = 0;

    std::uint64_t quota_throttles = 0; //!< Admissions delayed by a
                                       //!< token bucket.
    std::uint64_t outstanding_stalls = 0; //!< ... by the in-flight
                                          //!< byte bound.
    std::uint64_t backpressure_stalls = 0; //!< ... by a full output
                                           //!< queue (slow reader).
    std::uint64_t read_pauses = 0; //!< EPOLLIN dropped on a flooding
                                   //!< connection.

    bool degraded = false;        //!< Currently shedding low-priority
                                  //!< load (see ServerConfig).
    std::uint64_t busy_sheds = 0; //!< Requests answered kStatusBusy.
};

class Server
{
  public:
    /** @p session_template seeds every connection's SessionConfig
     * (conditioning profile etc.); the priority comes per connection
     * from its first request frame. */
    Server(trng::Service &service, ServerConfig config,
           trng::SessionConfig session_template);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the configured listeners.
     * @throws std::runtime_error when none can be bound. */
    void start();

    /** Serve until stop(), or until an accept_limit is reached and
     * the remaining connections drain. Call start() first. */
    void run();

    /** Make run() return. Thread- and signal-safe. */
    void stop();

    /** Actual TCP port after start() (0 when TCP is disabled). */
    std::uint16_t tcpPort() const;

    ServerStats stats() const;

  private:
    struct InFlight
    {
        std::future<util::BitStream> future;
        std::uint32_t bytes = 0;
        /** Shed marker: no Service read was submitted; drainReady
         * emits a kStatusBusy frame in FIFO position instead. */
        bool busy = false;
    };

    struct Client
    {
        std::uint64_t id = 0;
        std::unique_ptr<Connection> conn;
        trng::Session session;
        bool session_open = false;
        int priority = 0;
        QuotaConfig quota;
        TokenBucket bucket;

        std::deque<std::uint32_t> pending; //!< Unadmitted requests.
        std::deque<InFlight> in_flight;    //!< Admitted, awaiting bits.
        std::size_t outstanding_bytes = 0;
        bool throttled = false; //!< Head request waiting on tokens.
        bool stalled = false;   //!< Admission gated on output queue.
        bool dead = false;      //!< Closed; reaped by the sweep.
        std::uint64_t linger_deadline_ns = 0; //!< closeSoon bound.
    };

    void onAccept(int fd, bool tcp);
    void onFrame(Client &client, Frame &frame);
    void onDecodeError(Client &client, FrameDecoder::Error error);
    void onClosed(Client &client, const std::string &reason);

    void openSession(Client &client, int priority);
    /** Move pending requests into the Service while quota, the
     * outstanding bound, and the output queue allow. */
    void admitPending(Client &client, std::uint64_t now_ns);
    /** Complete ready head futures into response frames. */
    void drainReady(Client &client);
    void managePause(Client &client);
    void respondError(Client &client, std::uint16_t status,
                      const std::string &message);
    /** Graceful drop: flush, half-close, linger-bounded. */
    void closeSoon(Client &client, const std::string &reason);

    /** Re-evaluate degraded mode from Service health (rate-limited
     * stats poll) and escalate the shed band while it persists. */
    void updateDegraded(std::uint64_t now_ns);

    /** Per-iteration bookkeeping run between epoll waits. */
    void sweep();
    /** Poll timeout for the next runOnce, from pending work. */
    int sweepTimeoutMs() const;
    void closeListeners();

    trng::Service &service_;
    ServerConfig config_;
    trng::SessionConfig session_template_;

    EventLoop loop_;
    std::unique_ptr<Listener> tcp_listener_;
    std::unique_ptr<Listener> unix_listener_;

    std::uint64_t next_client_id_ = 1;
    std::map<std::uint64_t, std::unique_ptr<Client>> clients_;
    std::size_t total_in_flight_ = 0;
    std::size_t total_pending_ = 0;
    long accepted_ = 0;
    bool started_ = false;

    // Degraded-mode state (loop thread only).
    bool degraded_ = false;
    bool pool_collapsed_ = false; //!< No healthy member left at all.
    int shed_threshold_ = 0;      //!< Shed priorities <= this.
    int max_priority_seen_ = 1;
    std::uint64_t next_health_poll_ns_ = 0;
    std::uint64_t next_escalation_ns_ = 0;

    mutable std::mutex stats_mu_;
    ServerStats stats_;
};

} // namespace drange::net

#endif // DRANGE_NET_SERVER_HH
