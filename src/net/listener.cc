#include "net/listener.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace drange::net {

void
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos)
        throw std::invalid_argument(
            "expected host:port, got \"" + spec + "\"");
    host = spec.substr(0, colon);
    const std::string port_str = spec.substr(colon + 1);
    char *end = nullptr;
    const long value = std::strtol(port_str.c_str(), &end, 10);
    if (port_str.empty() || (end && *end != '\0') || value < 0 ||
        value > 65535)
        throw std::invalid_argument("bad port in \"" + spec + "\"");
    port = static_cast<std::uint16_t>(value);
}

int
connectTcp(const std::string &host, std::uint16_t port,
           std::string &error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const std::string node = host.empty() ? "127.0.0.1" : host;
    const int rc =
        ::getaddrinfo(node.c_str(), service.c_str(), &hints, &result);
    if (rc != 0) {
        error = std::string("resolve ") + node + ": " +
                ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (addrinfo *ai = result; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        error = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0 && error.empty())
        error = "connect: no usable address";
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return fd;
}

int
connectUnix(const std::string &path, std::string &error)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        error = "socket path too long: " + path;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = std::string("connect ") + path + ": " +
                std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

std::unique_ptr<Listener>
Listener::tcp(EventLoop &loop, const std::string &host,
              std::uint16_t port, AcceptFn on_accept)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *result = nullptr;
    const std::string service = std::to_string(port);
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 service.c_str(), &hints, &result);
    if (rc != 0)
        throw std::runtime_error(std::string("resolve ") +
                                 (host.empty() ? "*" : host) + ": " +
                                 ::gai_strerror(rc));

    int fd = -1;
    std::string error = "no usable address";
    for (addrinfo *ai = result; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 1024) == 0)
            break;
        error = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(result);
    if (fd < 0)
        throw std::runtime_error("tcp listener " + host + ":" +
                                 service + ": " + error);

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    std::uint16_t actual_port = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        actual_port = ntohs(bound.sin_port);

    return std::unique_ptr<Listener>(new Listener(
        loop, fd, actual_port, "", std::move(on_accept)));
}

std::unique_ptr<Listener>
Listener::unixSocket(EventLoop &loop, const std::string &path,
                     AcceptFn on_accept)
{
    const int fd =
        ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                 0);
    if (fd < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        throw std::runtime_error("socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 1024) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("unix listener " + path + ": " +
                                 std::strerror(err));
    }
    return std::unique_ptr<Listener>(new Listener(
        loop, fd, 0, path, std::move(on_accept)));
}

Listener::Listener(EventLoop &loop, int fd, std::uint16_t port,
                   std::string unix_path, AcceptFn on_accept)
    : loop_(loop), fd_(fd), port_(port),
      unix_path_(std::move(unix_path)),
      on_accept_(std::move(on_accept))
{
    loop_.add(fd_, EPOLLIN, [this](std::uint32_t) { onReadable(); });
}

Listener::~Listener()
{
    close();
}

void
Listener::onReadable()
{
    for (;;) {
        const int client = ::accept4(fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (client < 0) {
            // EAGAIN = drained; EMFILE/ENFILE etc. also just stop the
            // burst -- the listener stays registered and retries on
            // the next readable event.
            return;
        }
        on_accept_(client);
        if (closed())
            return; // The callback closed us (accept limit reached).
    }
}

void
Listener::close()
{
    if (fd_ < 0)
        return;
    loop_.remove(fd_);
    ::close(fd_);
    fd_ = -1;
    if (!unix_path_.empty())
        ::unlink(unix_path_.c_str());
}

} // namespace drange::net
