#include "net/connection.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace drange::net {

Connection::Connection(EventLoop &loop, int fd,
                       std::size_t max_payload_bytes,
                       std::size_t max_output_bytes)
    : loop_(loop), fd_(fd), decoder_(max_payload_bytes),
      max_output_bytes_(max_output_bytes)
{
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

Connection::~Connection()
{
    if (!closed_ && fd_ >= 0) {
        if (started_)
            loop_.remove(fd_);
        ::close(fd_);
    }
}

void
Connection::start(Callbacks callbacks)
{
    callbacks_ = std::move(callbacks);
    started_ = true;
    loop_.add(fd_, EPOLLIN,
              [this](std::uint32_t events) { onEvents(events); });
}

void
Connection::onEvents(std::uint32_t events)
{
    if (closed_)
        return;
    if (events & (EPOLLERR | EPOLLHUP)) {
        // Flush what the socket will still take (EPOLLHUP with unread
        // input also raises EPOLLIN below on level-triggered epoll).
        if (events & EPOLLIN)
            handleReadable();
        if (!closed_)
            close((events & EPOLLERR) ? "socket error" : "peer hung up");
        return;
    }
    if (events & EPOLLOUT)
        flushOutput();
    // Draining mode (flush_then_close_) keeps reading even while
    // paused: the input is discarded, see handleReadable.
    if (!closed_ && (events & EPOLLIN) &&
        (!paused_ || flush_then_close_))
        handleReadable();
}

void
Connection::handleReadable()
{
    std::uint8_t buffer[64 * 1024];
    if (flush_then_close_) {
        // Lingering close: discard whatever the peer still sends so
        // the final close never fires with unread bytes in the kernel
        // buffer -- that would turn the FIN into an RST, which can
        // destroy our own queued output (the error frame the peer is
        // owed) before it is delivered.
        for (;;) {
            const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
            if (got > 0)
                continue;
            if (got == 0) {
                close(flush_close_reason_);
                return;
            }
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            close(flush_close_reason_);
            return;
        }
    }
    for (;;) {
        const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
        if (got > 0) {
            bytes_in_ += static_cast<std::uint64_t>(got);
            decoder_.feed(buffer, static_cast<std::size_t>(got));
            Frame frame;
            while (decoder_.next(frame)) {
                if (callbacks_.on_frame)
                    callbacks_.on_frame(*this, frame);
                // A handler may close, or start a graceful close --
                // later frames in this batch die with the connection.
                if (closed_ || flush_then_close_)
                    return;
            }
            if (decoder_.error() != FrameDecoder::Error::None) {
                // The stream is unframeable from here on; stop
                // listening and let the owner answer + close.
                pauseReading();
                if (!decode_error_reported_) {
                    decode_error_reported_ = true;
                    if (callbacks_.on_decode_error)
                        callbacks_.on_decode_error(*this,
                                                   decoder_.error());
                }
                return;
            }
            if (paused_ || closed_)
                return;
            if (static_cast<std::size_t>(got) < sizeof(buffer))
                return; // Likely drained; level-trigger re-checks.
            continue;
        }
        if (got == 0) {
            close("peer closed");
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        close(std::string("recv: ") + std::strerror(errno));
        return;
    }
}

bool
Connection::send(std::vector<std::uint8_t> bytes)
{
    if (closed_ || bytes.empty())
        return !closed_;
    if (flush_then_close_) {
        // The output contract ended at closeAfterFlush: the socket may
        // already be half-closed (SHUT_WR), and a write now would EPIPE
        // into a hard close whose RST can destroy the final flushed
        // frame in flight. Drop the bytes instead.
        return false;
    }
    out_bytes_ += bytes.size();
    out_.push_back(std::move(bytes));
    flushOutput();
    if (closed_)
        return false;
    if (max_output_bytes_ > 0 && out_bytes_ > max_output_bytes_) {
        close("output queue overflow (slow reader)");
        return false;
    }
    return true;
}

void
Connection::flushOutput()
{
    while (!closed_ && !out_.empty()) {
        const std::vector<std::uint8_t> &front = out_.front();
        const std::size_t remaining = front.size() - out_front_offset_;
        const ssize_t sent =
            ::send(fd_, front.data() + out_front_offset_, remaining,
                   MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            close(std::string("send: ") + std::strerror(errno));
            return;
        }
        bytes_out_ += static_cast<std::uint64_t>(sent);
        out_bytes_ -= static_cast<std::size_t>(sent);
        out_front_offset_ += static_cast<std::size_t>(sent);
        if (out_front_offset_ == front.size()) {
            out_.pop_front();
            out_front_offset_ = 0;
        } else {
            break; // Socket buffer full mid-chunk.
        }
    }
    if (!closed_ && out_.empty() && flush_then_close_ &&
        !shutdown_sent_) {
        // Output delivered: half-close and wait for the peer's EOF
        // (see the discard loop in handleReadable). The owner bounds
        // the wait -- see Server's linger deadline.
        ::shutdown(fd_, SHUT_WR);
        shutdown_sent_ = true;
    }
    if (!closed_)
        updateInterest();
}

void
Connection::pauseReading()
{
    if (closed_ || paused_)
        return;
    paused_ = true;
    updateInterest();
}

void
Connection::resumeReading()
{
    if (closed_ || !paused_)
        return;
    paused_ = false;
    updateInterest();
    // Bytes already buffered in the decoder (fed before the pause)
    // stay queued until the next readable event; the kernel buffer is
    // non-empty in that case, so level-triggered epoll fires again.
}

void
Connection::updateInterest()
{
    std::uint32_t events = 0;
    if (flush_then_close_)
        events |= EPOLLIN; // Discard-until-EOF, see handleReadable.
    else if (!paused_ && decoder_.error() == FrameDecoder::Error::None)
        events |= EPOLLIN;
    if (!out_.empty())
        events |= EPOLLOUT;
    loop_.modify(fd_, events);
}

void
Connection::closeAfterFlush(const std::string &reason)
{
    if (closed_ || flush_then_close_)
        return;
    flush_then_close_ = true;
    flush_close_reason_ = reason;
    if (out_.empty() && !shutdown_sent_) {
        ::shutdown(fd_, SHUT_WR);
        shutdown_sent_ = true;
    }
    updateInterest();
}

void
Connection::close(const std::string &reason)
{
    if (closed_)
        return;
    closed_ = true;
    if (started_)
        loop_.remove(fd_);
    ::close(fd_);
    fd_ = -1;
    out_.clear();
    out_bytes_ = 0;
    if (callbacks_.on_closed)
        callbacks_.on_closed(*this, reason);
}

} // namespace drange::net
