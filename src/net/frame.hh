/**
 * @file
 * Wire framing of the entropy-service protocol, incremental form.
 *
 * The frame layout is the one trngd has spoken since the daemon
 * shipped (see tools/trng_proto.hh for the blocking-I/O helpers built
 * on top of this header):
 *
 *   Request,  8 bytes little-endian, no payload:
 *       'D' 'r' | uint16 priority | uint32 payload bytes requested
 *   Response, 8-byte header followed by the payload:
 *       'd' 'R' | uint16 status   | uint32 payload byte count
 *
 * status 0 is success (payload = entropy bytes). kStatusError is a
 * service-side failure (payload = UTF-8 message), kStatusProtocolError
 * a rejected request (malformed, or larger than the daemon's
 * max_request_bytes); after a protocol error on an oversized-but-
 * well-framed request the connection stays usable. kStatusBusy is
 * load shedding (payload = retry-after hint, see decodeBusyRetryMs);
 * the connection stays open and the client retries later.
 *
 * FrameDecoder is built for non-blocking transports: feed() it
 * whatever bytes recv() produced -- a lone byte, half a header, three
 * coalesced frames -- and next() yields complete frames as they
 * become decodable. Garbage magic and response payloads beyond the
 * configured bound poison the decoder (error()), because a byte
 * stream with a corrupt frame boundary cannot be resynchronized.
 * FrameEncoder appends wire bytes to a caller-owned buffer so writers
 * can coalesce frames into one output queue entry.
 */

#ifndef DRANGE_NET_FRAME_HH
#define DRANGE_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace drange::net {

constexpr unsigned char kRequestMagic0 = 'D';
constexpr unsigned char kRequestMagic1 = 'r';
constexpr unsigned char kResponseMagic0 = 'd';
constexpr unsigned char kResponseMagic1 = 'R';

constexpr std::uint16_t kStatusOk = 0;
constexpr std::uint16_t kStatusError = 1;         //!< Service failed.
constexpr std::uint16_t kStatusProtocolError = 2; //!< Request refused.
/** Request shed under degraded mode (reservoir starved or too much of
 * the pool quarantined): the server answers instead of queueing
 * unboundedly, the connection stays open, and the client should retry
 * after the hinted delay. Payload = 4-byte LE retry-after in ms. */
constexpr std::uint16_t kStatusBusy = 3;

constexpr std::size_t kBusyPayloadBytes = 4;

constexpr std::size_t kHeaderBytes = 8;

/** One decoded frame. Requests carry no payload on the wire: their
 * length field is the number of entropy bytes the client wants. */
struct Frame
{
    enum class Kind { Request, Response };

    Kind kind = Kind::Request;
    std::uint16_t code = 0; //!< Request: priority. Response: status.
    std::uint32_t request_bytes = 0;    //!< Request frames only.
    std::vector<std::uint8_t> payload;  //!< Response frames only.
};

inline std::uint16_t
decode16(const unsigned char *in)
{
    return static_cast<std::uint16_t>(
        in[0] | (static_cast<unsigned>(in[1]) << 8));
}

inline std::uint32_t
decode32(const unsigned char *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

/** Encode a request frame into @p out[kHeaderBytes]. */
inline void
encodeRequestHeader(unsigned char *out, std::uint16_t priority,
                    std::uint32_t num_bytes)
{
    out[0] = kRequestMagic0;
    out[1] = kRequestMagic1;
    out[2] = static_cast<unsigned char>(priority & 0xff);
    out[3] = static_cast<unsigned char>(priority >> 8);
    for (int i = 0; i < 4; ++i)
        out[4 + i] =
            static_cast<unsigned char>((num_bytes >> (8 * i)) & 0xff);
}

/** Encode a response header into @p out[kHeaderBytes]. */
inline void
encodeResponseHeader(unsigned char *out, std::uint16_t status,
                     std::uint32_t payload_bytes)
{
    out[0] = kResponseMagic0;
    out[1] = kResponseMagic1;
    out[2] = static_cast<unsigned char>(status & 0xff);
    out[3] = static_cast<unsigned char>(status >> 8);
    for (int i = 0; i < 4; ++i)
        out[4 + i] = static_cast<unsigned char>(
            (payload_bytes >> (8 * i)) & 0xff);
}

/** Encode a kStatusBusy payload into @p out[kBusyPayloadBytes]. */
inline void
encodeBusyPayload(unsigned char *out, std::uint32_t retry_after_ms)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(
            (retry_after_ms >> (8 * i)) & 0xff);
}

/** Retry-after hint from a kStatusBusy response payload; 0 when the
 * payload is too short (retry immediately, at the client's option). */
inline std::uint32_t
decodeBusyRetryMs(const std::vector<std::uint8_t> &payload)
{
    if (payload.size() < kBusyPayloadBytes)
        return 0;
    return decode32(payload.data());
}

/** Appends wire-encoded frames to caller-owned byte buffers. */
class FrameEncoder
{
  public:
    static void appendRequest(std::vector<std::uint8_t> &out,
                              std::uint16_t priority,
                              std::uint32_t num_bytes);

    static void appendResponse(std::vector<std::uint8_t> &out,
                               std::uint16_t status,
                               const std::uint8_t *payload,
                               std::size_t payload_bytes);

    /** Response whose payload is a UTF-8 message (error statuses). */
    static void appendResponse(std::vector<std::uint8_t> &out,
                               std::uint16_t status,
                               const std::string &message);

    static std::vector<std::uint8_t> request(std::uint16_t priority,
                                             std::uint32_t num_bytes);
    static std::vector<std::uint8_t>
    response(std::uint16_t status, const std::uint8_t *payload,
             std::size_t payload_bytes);
};

/**
 * Incremental frame parser for non-blocking reads.
 *
 * Zero or more feed() calls accumulate bytes; next() pops the first
 * complete frame. Once error() != Error::None the decoder is poisoned:
 * feed() discards input and next() always returns false (the caller
 * should report the error and close the connection).
 */
class FrameDecoder
{
  public:
    enum class Error {
        None,
        BadMagic,         //!< First two bytes match neither frame kind.
        OversizedPayload, //!< Response payload beyond max_payload_bytes.
    };

    /** @p max_payload_bytes bounds the response payload length this
     * decoder will buffer; a longer length field is a protocol error
     * (it would let a peer demand unbounded memory). */
    explicit FrameDecoder(std::size_t max_payload_bytes = 1u << 20)
        : max_payload_(max_payload_bytes)
    {
    }

    /** Append raw transport bytes. */
    void feed(const void *data, std::size_t count);

    /** Decode the next complete frame into @p out.
     * @return false when more bytes are needed (or on error()). */
    bool next(Frame &out);

    Error error() const { return error_; }

    /** Bytes fed but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

    /** Forget buffered bytes and clear the error state. */
    void reset();

  private:
    std::size_t max_payload_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0; //!< Consumed prefix of buf_.
    Error error_ = Error::None;
};

} // namespace drange::net

#endif // DRANGE_NET_FRAME_HH
