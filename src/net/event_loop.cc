#include "net/event_loop.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace drange::net {

EventLoop::EventLoop()
{
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0)
        throw std::runtime_error(std::string("epoll_create1: ") +
                                 std::strerror(errno));
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) {
        const int err = errno;
        ::close(epoll_fd_);
        throw std::runtime_error(std::string("eventfd: ") +
                                 std::strerror(err));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0; // Reserved id for the wakeup fd.
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
        const int err = errno;
        ::close(wake_fd_);
        ::close(epoll_fd_);
        throw std::runtime_error(std::string("epoll_ctl(wakeup): ") +
                                 std::strerror(err));
    }
}

EventLoop::~EventLoop()
{
    ::close(wake_fd_);
    ::close(epoll_fd_);
}

void
EventLoop::add(int fd, std::uint32_t events, Callback callback)
{
    if (by_fd_.count(fd))
        throw std::logic_error("EventLoop::add: fd already registered");
    const std::uint64_t id = next_id_++;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
        throw std::runtime_error(std::string("epoll_ctl(add): ") +
                                 std::strerror(errno));
    entries_[id] = Entry{fd, events,
                         std::make_shared<Callback>(
                             std::move(callback))};
    by_fd_[fd] = id;
}

void
EventLoop::modify(int fd, std::uint32_t events)
{
    const auto it = by_fd_.find(fd);
    if (it == by_fd_.end())
        return;
    Entry &entry = entries_[it->second];
    if (entry.events == events)
        return;
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = it->second;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0)
        entry.events = events;
}

void
EventLoop::remove(int fd)
{
    const auto it = by_fd_.find(fd);
    if (it == by_fd_.end())
        return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    entries_.erase(it->second);
    by_fd_.erase(it);
}

int
EventLoop::runOnce(int timeout_ms)
{
    epoll_event events[64];
    int ready = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (ready < 0) {
        if (errno != EINTR)
            throw std::runtime_error(std::string("epoll_wait: ") +
                                     std::strerror(errno));
        ready = 0;
    }

    int dispatched = 0;
    for (int i = 0; i < ready; ++i) {
        const std::uint64_t id = events[i].data.u64;
        if (id == 0) { // Wakeup eventfd: drain the counter.
            std::uint64_t value = 0;
            [[maybe_unused]] const ssize_t n =
                ::read(wake_fd_, &value, sizeof(value));
            continue;
        }
        // Look the entry up per event: an earlier handler in this
        // batch may have removed it (stale id finds nothing, even if
        // the fd number was recycled under a fresh id).
        const auto it = entries_.find(id);
        if (it == entries_.end())
            continue;
        // Keep the callback alive across the call even if it
        // remove()s itself.
        const std::shared_ptr<Callback> callback = it->second.callback;
        (*callback)(events[i].events);
        ++dispatched;
    }

    std::vector<std::function<void()>> tasks;
    {
        std::lock_guard<std::mutex> lock(post_mu_);
        tasks.swap(posted_);
    }
    for (auto &task : tasks)
        task();
    return dispatched;
}

void
EventLoop::run()
{
    while (!stop_.load())
        runOnce(-1);
}

void
EventLoop::stop()
{
    stop_.store(true);
    wakeup();
}

void
EventLoop::wakeup()
{
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(wake_fd_, &one, sizeof(one));
}

void
EventLoop::post(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(post_mu_);
        posted_.push_back(std::move(fn));
    }
    wakeup();
}

} // namespace drange::net
