/**
 * @file
 * Listening sockets (TCP and Unix-domain) on an EventLoop, plus the
 * blocking connect helpers the clients (trng-cli, trng_loadgen,
 * tests) use to reach them.
 *
 * A Listener accepts every pending connection when its fd turns
 * readable (accepted fds are SOCK_NONBLOCK | SOCK_CLOEXEC) and hands
 * each to the accept callback; the callback typically wraps the fd in
 * a net::Connection. TCP listeners may bind port 0 and report the
 * kernel-chosen port via port(), which is how the tests get
 * collision-free ephemeral endpoints.
 */

#ifndef DRANGE_NET_LISTENER_HH
#define DRANGE_NET_LISTENER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/event_loop.hh"

namespace drange::net {

/** Parse "host:port" (host may be empty = all interfaces).
 * @throws std::invalid_argument on a malformed port. */
void parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port);

/** Blocking TCP connect (IPv4 / names via getaddrinfo).
 * @return fd, or -1 with @p error filled in. */
int connectTcp(const std::string &host, std::uint16_t port,
               std::string &error);

/** Blocking Unix-domain connect. @return fd or -1 + @p error. */
int connectUnix(const std::string &path, std::string &error);

class Listener
{
  public:
    /** Receives each accepted (non-blocking) fd; ownership passes to
     * the callback. */
    using AcceptFn = std::function<void(int fd)>;

    /**
     * Bind + listen on @p host:@p port (empty host = all interfaces,
     * port 0 = ephemeral) and register with @p loop.
     * @throws std::runtime_error on resolve/bind/listen failure.
     */
    static std::unique_ptr<Listener> tcp(EventLoop &loop,
                                         const std::string &host,
                                         std::uint16_t port,
                                         AcceptFn on_accept);

    /** Bind + listen on a Unix-domain @p path (unlinked first, and
     * again on close). @throws std::runtime_error on failure. */
    static std::unique_ptr<Listener> unixSocket(EventLoop &loop,
                                                const std::string &path,
                                                AcceptFn on_accept);

    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Actual bound TCP port (useful after binding port 0). */
    std::uint16_t port() const { return port_; }

    /** Stop accepting; closes the socket, unlinks a Unix path. */
    void close();

    bool closed() const { return fd_ < 0; }

  private:
    Listener(EventLoop &loop, int fd, std::uint16_t port,
             std::string unix_path, AcceptFn on_accept);

    void onReadable();

    EventLoop &loop_;
    int fd_;
    std::uint16_t port_ = 0;
    std::string unix_path_; //!< Unlinked on close; empty for TCP.
    AcceptFn on_accept_;
};

} // namespace drange::net

#endif // DRANGE_NET_LISTENER_HH
