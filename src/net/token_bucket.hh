/**
 * @file
 * Token-bucket rate limiter for per-client quotas (net::Server).
 *
 * Pure arithmetic over caller-supplied timestamps -- no clock access,
 * no locking -- so quota math is deterministic and unit-testable: the
 * event loop passes one steady_clock reading per sweep and every
 * bucket advances on it.
 *
 * Semantics: the bucket holds up to `burst` tokens and refills at
 * `rate` tokens per second. tryConsume(n) succeeds when n tokens are
 * available, OR when the bucket is full -- a request larger than the
 * whole burst is admitted at a full bucket and drives the level
 * negative (a debt), so oversized requests make progress instead of
 * deadlocking; the debt is repaid before anything else is admitted.
 * A default-constructed (or rate <= 0) bucket is unlimited.
 */

#ifndef DRANGE_NET_TOKEN_BUCKET_HH
#define DRANGE_NET_TOKEN_BUCKET_HH

#include <algorithm>
#include <cstdint>

namespace drange::net {

class TokenBucket
{
  public:
    /** Unlimited: every tryConsume succeeds. */
    TokenBucket() = default;

    /** @p rate_per_s tokens/second, up to @p burst banked. The bucket
     * starts full at @p now_ns. rate_per_s <= 0 means unlimited;
     * burst is clamped to at least 1 token for a limited bucket. */
    TokenBucket(double rate_per_s, double burst,
                std::uint64_t now_ns = 0)
        : rate_(rate_per_s), burst_(std::max(burst, 1.0)),
          tokens_(std::max(burst, 1.0)), last_ns_(now_ns)
    {
    }

    bool unlimited() const { return rate_ <= 0.0; }

    /** Current token level after refilling to @p now_ns. */
    double available(std::uint64_t now_ns) const
    {
        return unlimited() ? 0.0 : refilled(now_ns);
    }

    /**
     * Take @p tokens if the bucket allows it (see file comment for
     * the oversized-at-full rule). @return true when consumed.
     */
    bool tryConsume(double tokens, std::uint64_t now_ns)
    {
        if (unlimited())
            return true;
        tokens_ = refilled(now_ns);
        last_ns_ = now_ns;
        if (tokens_ + 1e-9 < std::min(tokens, burst_))
            return false;
        tokens_ -= tokens;
        return true;
    }

    /**
     * Nanoseconds until tryConsume(@p tokens) could succeed; 0 when it
     * would succeed right now.
     */
    std::uint64_t nsUntilAvailable(double tokens,
                                   std::uint64_t now_ns) const
    {
        if (unlimited())
            return 0;
        const double have = refilled(now_ns);
        const double need = std::min(tokens, burst_) - have;
        if (need <= 0.0)
            return 0;
        return static_cast<std::uint64_t>(need / rate_ * 1e9) + 1;
    }

  private:
    double refilled(std::uint64_t now_ns) const
    {
        const double elapsed_s =
            now_ns > last_ns_
                ? static_cast<double>(now_ns - last_ns_) * 1e-9
                : 0.0;
        return std::min(burst_, tokens_ + rate_ * elapsed_s);
    }

    double rate_ = 0.0;  //!< Tokens per second; <= 0 = unlimited.
    double burst_ = 0.0; //!< Bucket capacity.
    double tokens_ = 0.0;
    std::uint64_t last_ns_ = 0;
};

} // namespace drange::net

#endif // DRANGE_NET_TOKEN_BUCKET_HH
