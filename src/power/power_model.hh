/**
 * @file
 * DRAMPower-style energy model.
 *
 * The paper estimates D-RaNGe's energy with DRAMPower on Ramulator
 * command traces (Section 7.3, "Low Energy Consumption"): the energy of
 * the generation loop minus the energy of an idle device over the same
 * interval, divided by the bits produced. This model implements the same
 * methodology from IDD/VDD current specifications and a command trace.
 */

#ifndef DRANGE_POWER_POWER_MODEL_HH
#define DRANGE_POWER_POWER_MODEL_HH

#include <cstdint>

#include "controller/command.hh"
#include "dram/config.hh"

namespace drange::power {

/**
 * Current/voltage specification of a device (values per rank).
 */
struct PowerSpec
{
    double vdd = 1.1;        //!< Core supply (V).
    double idd0_ma = 60.0;   //!< ACT-PRE cycling current.
    double idd2n_ma = 30.0;  //!< Precharge standby.
    double idd3n_ma = 42.0;  //!< Active standby.
    double idd4r_ma = 210.0; //!< Burst read.
    double idd4w_ma = 195.0; //!< Burst write.
    double idd5_ma = 155.0;  //!< Refresh.

    /** LPDDR4-3200 rank (paper's main devices). */
    static PowerSpec lpddr4();

    /** DDR3-1600 rank (validation devices). */
    static PowerSpec ddr3();
};

/** Energy breakdown of a command trace. */
struct EnergyBreakdown
{
    double act_pre_nj = 0.0;
    double read_nj = 0.0;
    double write_nj = 0.0;
    double refresh_nj = 0.0;
    double background_nj = 0.0;

    double total_nj() const
    {
        return act_pre_nj + read_nj + write_nj + refresh_nj +
               background_nj;
    }
};

/**
 * Computes trace energy from the DRAMPower current-based formulas.
 */
class PowerModel
{
  public:
    PowerModel(const PowerSpec &spec, const dram::TimingParams &timing);

    /**
     * Energy of a command trace spanning @p duration_ns, of which
     * @p active_ns was spent with at least one bank open.
     */
    EnergyBreakdown
    traceEnergy(const ctrl::CommandTrace &trace, double duration_ns,
                double active_ns) const;

    /** Energy of an idle (precharged, refreshing) device over an
     * interval; the subtraction baseline of the paper's methodology. */
    double idleEnergyNj(double duration_ns) const;

    const PowerSpec &spec() const { return spec_; }

  private:
    PowerSpec spec_;
    dram::TimingParams timing_;
};

} // namespace drange::power

#endif // DRANGE_POWER_POWER_MODEL_HH
