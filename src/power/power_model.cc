#include "power/power_model.hh"

namespace drange::power {

PowerSpec
PowerSpec::lpddr4()
{
    return PowerSpec{};
}

PowerSpec
PowerSpec::ddr3()
{
    PowerSpec s;
    s.vdd = 1.5;
    s.idd0_ma = 95.0;
    s.idd2n_ma = 42.0;
    s.idd3n_ma = 62.0;
    s.idd4r_ma = 250.0;
    s.idd4w_ma = 235.0;
    s.idd5_ma = 215.0;
    return s;
}

PowerModel::PowerModel(const PowerSpec &spec,
                       const dram::TimingParams &timing)
    : spec_(spec), timing_(timing)
{
}

EnergyBreakdown
PowerModel::traceEnergy(const ctrl::CommandTrace &trace,
                        double duration_ns, double active_ns) const
{
    EnergyBreakdown e;
    const double ma_ns_to_nj = spec_.vdd * 1e-3; // mA * ns * V -> nJ.

    for (const auto &cmd : trace) {
        switch (cmd.type) {
          case ctrl::CommandType::ACT:
            // One ACT-PRE cycle above the standby floor (DRAMPower's
            // E_act formulation, charged at ACT time).
            e.act_pre_nj += (spec_.idd0_ma * timing_.trc_ns -
                             (spec_.idd3n_ma * timing_.tras_ns +
                              spec_.idd2n_ma *
                                  (timing_.trc_ns - timing_.tras_ns))) *
                            ma_ns_to_nj;
            break;
          case ctrl::CommandType::PRE:
            break; // Accounted with ACT.
          case ctrl::CommandType::RD:
            e.read_nj += (spec_.idd4r_ma - spec_.idd3n_ma) *
                         timing_.tbl_ns * ma_ns_to_nj;
            break;
          case ctrl::CommandType::WR:
            e.write_nj += (spec_.idd4w_ma - spec_.idd3n_ma) *
                          timing_.tbl_ns * ma_ns_to_nj;
            break;
          case ctrl::CommandType::REF:
            e.refresh_nj += (spec_.idd5_ma - spec_.idd2n_ma) *
                            timing_.trfc_ns * ma_ns_to_nj;
            break;
        }
    }

    const double precharged_ns = duration_ns - active_ns;
    e.background_nj = (spec_.idd3n_ma * active_ns +
                       spec_.idd2n_ma * precharged_ns) *
                      ma_ns_to_nj;
    return e;
}

double
PowerModel::idleEnergyNj(double duration_ns) const
{
    // Precharged standby plus the mandatory refresh duty cycle.
    const double ma_ns_to_nj = spec_.vdd * 1e-3;
    const double refreshes = duration_ns / timing_.trefi_ns;
    const double refresh_nj = refreshes * (spec_.idd5_ma - spec_.idd2n_ma) *
                              timing_.trfc_ns * ma_ns_to_nj;
    return spec_.idd2n_ma * duration_ns * ma_ns_to_nj + refresh_nj;
}

} // namespace drange::power
